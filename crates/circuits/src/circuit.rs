//! Arena-allocated Boolean circuits.

use std::collections::{HashMap, HashSet};
use std::fmt;

use intext_numeric::BigRational;

use crate::eval::{EvalScratch, ProbMatrix, LANES};

/// Index of a gate inside a [`Circuit`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GateId(pub u32);

/// A circuit gate. Variables are identified by `u32` ids (in this
/// project: [`TupleId`]s of the database).
///
/// [`TupleId`]: https://docs.rs/intext-tid
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Gate {
    /// Constant true/false.
    Const(bool),
    /// An input variable.
    Var(u32),
    /// Conjunction of the inputs (empty = true).
    And(Vec<GateId>),
    /// Disjunction of the inputs (empty = false).
    Or(Vec<GateId>),
    /// Negation.
    Not(GateId),
}

/// Why a serialized gate arena was rejected by [`Circuit::from_gates`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// More gates than [`GateId`]'s `u32` encoding can address.
    TooManyGates(usize),
    /// A gate's input points at this gate or a later one: the arena is
    /// not topologically ordered (or the index is simply dangling).
    DanglingInput {
        /// Arena index of the gate.
        gate: u32,
        /// The offending input reference.
        input: u32,
    },
    /// Two arena slots hold structurally identical gates, violating the
    /// hash-consing invariant every in-process construction maintains.
    DuplicateGate {
        /// Arena index of the second occurrence.
        gate: u32,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::TooManyGates(n) => write!(f, "{n} gates exceed the u32 encoding"),
            CircuitError::DanglingInput { gate, input } => {
                write!(f, "gate {gate} references nonexistent/later gate {input}")
            }
            CircuitError::DuplicateGate { gate } => {
                write!(
                    f,
                    "gate {gate} duplicates an earlier gate (hash-consing violated)"
                )
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Size and shape statistics of a circuit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total gates in the arena.
    pub gates: usize,
    /// `∧`-gates.
    pub and_gates: usize,
    /// `∨`-gates.
    pub or_gates: usize,
    /// `¬`-gates.
    pub not_gates: usize,
    /// Variable gates.
    pub var_gates: usize,
    /// Wires (sum of fan-ins).
    pub edges: usize,
    /// Longest path from the root to a leaf.
    pub depth: usize,
}

/// A Boolean circuit: an arena of gates plus a root.
///
/// Gates are hash-consed on insertion, so structurally identical subtrees
/// share storage, and the arena is topologically ordered (inputs precede
/// users), which makes all analyses single bottom-up passes.
///
/// **Concurrency contract** (relied on by the engine's sharded batch
/// evaluation): mutation happens only through `&mut self` during
/// construction; every walk — [`eval`](Self::eval),
/// [`probability_f64`](Self::probability_f64),
/// [`probability_exact`](Self::probability_exact), [`stats`](Self::stats)
/// — takes `&self`, keeps its scratch space on its own stack, and caches
/// nothing in the arena. A compiled circuit behind an `Arc` can therefore
/// be walked by any number of threads at once; the `Send + Sync` bound is
/// pinned by a compile-time test.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    gates: Vec<Gate>,
    dedup: HashMap<Gate, GateId>,
}

impl Circuit {
    /// Creates an empty circuit builder.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Inserts a gate (hash-consed), returning its id.
    ///
    /// # Panics
    /// Panics if an input id is out of range (inputs must already exist).
    pub fn add(&mut self, gate: Gate) -> GateId {
        let check = |id: &GateId| {
            assert!(
                (id.0 as usize) < self.gates.len(),
                "gate input {id:?} does not exist"
            );
        };
        match &gate {
            Gate::And(xs) | Gate::Or(xs) => xs.iter().for_each(check),
            Gate::Not(x) => check(x),
            Gate::Const(_) | Gate::Var(_) => {}
        }
        if let Some(&id) = self.dedup.get(&gate) {
            return id;
        }
        let id = GateId(u32::try_from(self.gates.len()).expect("gate count fits u32"));
        self.gates.push(gate.clone());
        self.dedup.insert(gate, id);
        id
    }

    /// Convenience: constant gate.
    pub fn constant(&mut self, b: bool) -> GateId {
        self.add(Gate::Const(b))
    }

    /// Convenience: variable gate.
    pub fn var(&mut self, v: u32) -> GateId {
        self.add(Gate::Var(v))
    }

    /// Convenience: conjunction.
    pub fn and(&mut self, inputs: Vec<GateId>) -> GateId {
        self.add(Gate::And(inputs))
    }

    /// Convenience: disjunction.
    pub fn or(&mut self, inputs: Vec<GateId>) -> GateId {
        self.add(Gate::Or(inputs))
    }

    /// Convenience: negation.
    pub fn not(&mut self, input: GateId) -> GateId {
        self.add(Gate::Not(input))
    }

    /// The gate stored at `id`.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0 as usize]
    }

    /// The whole arena in index order — the stable encoding serializers
    /// write. Inputs always precede their users (`add` appends), so
    /// replaying the slice through [`from_gates`](Self::from_gates)
    /// reproduces the arena exactly: same [`GateId`]s, bit-identical
    /// walks.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Rebuilds a circuit from a gate arena, as produced by
    /// [`gates`](Self::gates).
    ///
    /// This is the **total** deserialization path: where [`add`](Self::add)
    /// panics on trusted in-process misuse, every violation a corrupted
    /// byte stream could carry — dangling or forward input references,
    /// duplicate gates breaking hash-consing — comes back as a typed
    /// [`CircuitError`]. A successful return satisfies the same
    /// invariants construction guarantees (topological order,
    /// hash-consed uniqueness), so all `&self` walks behave exactly as
    /// on a freshly built circuit.
    pub fn from_gates(gates: Vec<Gate>) -> Result<Circuit, CircuitError> {
        if u32::try_from(gates.len()).is_err() {
            return Err(CircuitError::TooManyGates(gates.len()));
        }
        let mut dedup = HashMap::with_capacity(gates.len());
        for (i, gate) in gates.iter().enumerate() {
            let check = |id: &GateId| {
                if (id.0 as usize) < i {
                    Ok(())
                } else {
                    Err(CircuitError::DanglingInput {
                        gate: i as u32,
                        input: id.0,
                    })
                }
            };
            match gate {
                Gate::And(xs) | Gate::Or(xs) => xs.iter().try_for_each(check)?,
                Gate::Not(x) => check(x)?,
                Gate::Const(_) | Gate::Var(_) => {}
            }
            if dedup.insert(gate.clone(), GateId(i as u32)).is_some() {
                return Err(CircuitError::DuplicateGate { gate: i as u32 });
            }
        }
        Ok(Circuit { gates, dedup })
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` iff no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Evaluates the function of gate `root` under a variable assignment.
    pub fn eval(&self, root: GateId, assignment: &impl Fn(u32) -> bool) -> bool {
        let mut values = vec![false; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match g {
                Gate::Const(b) => *b,
                Gate::Var(v) => assignment(*v),
                Gate::And(xs) => xs.iter().all(|x| values[x.0 as usize]),
                Gate::Or(xs) => xs.iter().any(|x| values[x.0 as usize]),
                Gate::Not(x) => !values[x.0 as usize],
            };
        }
        values[root.0 as usize]
    }

    /// The set of variables below each gate (`Vars(g)` in the paper).
    pub fn vars_per_gate(&self) -> Vec<HashSet<u32>> {
        let mut out: Vec<HashSet<u32>> = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let set = match g {
                Gate::Const(_) => HashSet::new(),
                Gate::Var(v) => HashSet::from([*v]),
                Gate::Not(x) => out[x.0 as usize].clone(),
                Gate::And(xs) | Gate::Or(xs) => {
                    let mut s = HashSet::new();
                    for x in xs {
                        s.extend(out[x.0 as usize].iter().copied());
                    }
                    s
                }
            };
            out.push(set);
        }
        out
    }

    /// All variables appearing at or below `root`.
    pub fn vars(&self, root: GateId) -> HashSet<u32> {
        let per_gate = self.vars_per_gate();
        per_gate[root.0 as usize].clone()
    }

    /// The distinct variables of every `Var` gate in the arena, sorted
    /// ascending — exactly the probability entries a forward pass (any
    /// walk, lane-batched or scalar) reads. Batch evaluators fill their
    /// [`ProbMatrix`] for these variables only, which matters when the
    /// circuit touches a fraction of a large database.
    pub fn support_vars(&self) -> Vec<u32> {
        let mut vars: Vec<u32> = self
            .gates
            .iter()
            .filter_map(|g| match g {
                Gate::Var(v) => Some(*v),
                _ => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Probability of the gate's function under independent variable
    /// probabilities, **assuming the circuit rooted at `root` is a d-D**
    /// (`∧ → ×`, `∨ → +`, `¬ → 1-x`; Section 2 of the paper). Linear time.
    pub fn probability_f64(&self, root: GateId, prob: &impl Fn(u32) -> f64) -> f64 {
        let mut values = vec![0f64; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match g {
                Gate::Const(b) => f64::from(u8::from(*b)),
                Gate::Var(v) => prob(*v),
                Gate::And(xs) => xs.iter().map(|x| values[x.0 as usize]).product(),
                Gate::Or(xs) => xs.iter().map(|x| values[x.0 as usize]).sum(),
                Gate::Not(x) => 1.0 - values[x.0 as usize],
            };
        }
        values[root.0 as usize]
    }

    /// Lane-batched variant of [`Self::probability_f64`]: one forward
    /// pass over the gate table computes up to [`LANES`] scenarios at
    /// once, reading scenario probabilities from `probs` and keeping
    /// every intermediate in `scratch` (no heap allocation once the
    /// scratch has grown to this arena's size).
    ///
    /// **Bit-identity contract**: every gate folds its inputs in arena
    /// input order — products left-to-right for `∧`, sums left-to-right
    /// for `∨` — exactly as the scalar walk does, so lane `l` of the
    /// result is bit-identical to `probability_f64` called with lane
    /// `l`'s probabilities. Lanes the caller did not fill are computed
    /// from whatever the matrix holds and are simply meaningless; read
    /// back only the lanes you set.
    pub fn probability_f64_many(
        &self,
        root: GateId,
        probs: &ProbMatrix,
        scratch: &mut EvalScratch,
    ) -> [f64; LANES] {
        scratch.ensure_lanes(self.gates.len());
        let values = &mut scratch.lanes[..self.gates.len() * LANES];
        for (i, g) in self.gates.iter().enumerate() {
            let (done, rest) = values.split_at_mut(i * LANES);
            let out = &mut rest[..LANES];
            match g {
                Gate::Const(b) => out.fill(f64::from(u8::from(*b))),
                Gate::Var(v) => out.copy_from_slice(probs.block(*v)),
                Gate::And(xs) => {
                    out.fill(1.0);
                    for x in xs {
                        let input = &done[x.0 as usize * LANES..][..LANES];
                        for (o, v) in out.iter_mut().zip(input) {
                            *o *= v;
                        }
                    }
                }
                Gate::Or(xs) => {
                    out.fill(0.0);
                    for x in xs {
                        let input = &done[x.0 as usize * LANES..][..LANES];
                        for (o, v) in out.iter_mut().zip(input) {
                            *o += v;
                        }
                    }
                }
                Gate::Not(x) => {
                    let input = &done[x.0 as usize * LANES..][..LANES];
                    for (o, v) in out.iter_mut().zip(input) {
                        *o = 1.0 - v;
                    }
                }
            }
        }
        values[root.0 as usize * LANES..][..LANES]
            .try_into()
            .expect("lane block is exactly LANES wide")
    }

    /// Exact-rational variant of [`Self::probability_f64`].
    pub fn probability_exact(
        &self,
        root: GateId,
        prob: &impl Fn(u32) -> BigRational,
    ) -> BigRational {
        let mut values: Vec<BigRational> = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match g {
                Gate::Const(true) => BigRational::one(),
                Gate::Const(false) => BigRational::zero(),
                Gate::Var(v) => prob(*v),
                Gate::And(xs) => {
                    let mut acc = BigRational::one();
                    for x in xs {
                        acc = &acc * &values[x.0 as usize];
                    }
                    acc
                }
                Gate::Or(xs) => {
                    let mut acc = BigRational::zero();
                    for x in xs {
                        acc = &acc + &values[x.0 as usize];
                    }
                    acc
                }
                Gate::Not(x) => values[x.0 as usize].complement(),
            };
            values.push(v);
        }
        values[root.0 as usize].clone()
    }

    /// Counts the satisfying assignments of a d-D over the given variable
    /// set (which must contain all variables below `root`): weighted model
    /// counting at probability `1/2` scaled by `2^|vars|` — valid exactly
    /// because d-Ds make WMC linear.
    pub fn model_count_dd(&self, root: GateId, vars: &[u32]) -> BigRational {
        debug_assert!(
            self.vars(root).iter().all(|v| vars.contains(v)),
            "variable set must cover the circuit"
        );
        let half = BigRational::from_ratio(1, 2);
        let p = self.probability_exact(root, &|_| half.clone());
        let scale = BigRational::new(
            intext_numeric::BigInt::from(
                intext_numeric::BigUint::one().shl_bits(vars.len() as u64),
            ),
            intext_numeric::BigUint::one(),
        );
        &p * &scale
    }

    /// Gate/edge/depth statistics for the whole arena.
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats {
            gates: self.gates.len(),
            ..Default::default()
        };
        let mut depth = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            match g {
                Gate::Const(_) => {}
                Gate::Var(_) => s.var_gates += 1,
                Gate::Not(x) => {
                    s.not_gates += 1;
                    s.edges += 1;
                    depth[i] = depth[x.0 as usize] + 1;
                }
                Gate::And(xs) => {
                    s.and_gates += 1;
                    s.edges += xs.len();
                    depth[i] = xs.iter().map(|x| depth[x.0 as usize]).max().unwrap_or(0) + 1;
                }
                Gate::Or(xs) => {
                    s.or_gates += 1;
                    s.edges += xs.len();
                    depth[i] = xs.iter().map(|x| depth[x.0 as usize]).max().unwrap_or(0) + 1;
                }
            }
        }
        s.depth = depth.iter().copied().max().unwrap_or(0);
        s
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates ({}∧ {}∨ {}¬ {} vars), {} edges, depth {}",
            self.gates,
            self.and_gates,
            self.or_gates,
            self.not_gates,
            self.var_gates,
            self.edges,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (x0 ∧ x1) ∨ ¬x2, rooted at the Or.
    fn sample() -> (Circuit, GateId) {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let a = c.and(vec![x0, x1]);
        let n = c.not(x2);
        let root = c.or(vec![a, n]);
        (c, root)
    }

    #[test]
    fn evaluation() {
        let (c, root) = sample();
        let cases = [
            (0b000u32, true), // ¬x2
            (0b011, true),    // x0∧x1
            (0b100, false),
            (0b111, true),
        ];
        for (bits, expect) in cases {
            let got = c.eval(root, &|v| (bits >> v) & 1 == 1);
            assert_eq!(got, expect, "bits {bits:#05b}");
        }
    }

    #[test]
    fn hash_consing_shares_structure() {
        let mut c = Circuit::new();
        let x = c.var(7);
        let y = c.var(7);
        assert_eq!(x, y);
        let a1 = c.and(vec![x, y]);
        let a2 = c.and(vec![x, y]);
        assert_eq!(a1, a2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn vars_tracking() {
        let (c, root) = sample();
        let vars = c.vars(root);
        assert_eq!(vars, HashSet::from([0, 1, 2]));
    }

    #[test]
    fn dd_probability_on_a_valid_dd() {
        // x0 ∨ (¬x0 ∧ x1) is deterministic and decomposable.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let n0 = c.not(x0);
        let a = c.and(vec![n0, x1]);
        let root = c.or(vec![x0, a]);
        let p = c.probability_f64(root, &|v| if v == 0 { 0.5 } else { 0.25 });
        // Pr(x0 ∨ x1) = 1 - 0.5*0.75 = 0.625.
        assert!((p - 0.625).abs() < 1e-12);
        let exact = c.probability_exact(root, &|v| {
            BigRational::from_ratio(1, if v == 0 { 2 } else { 4 })
        });
        assert_eq!(exact, BigRational::from_ratio(5, 8));
    }

    #[test]
    fn stats_counts() {
        let (c, _) = sample();
        let s = c.stats();
        assert_eq!(s.gates, 6);
        assert_eq!(s.and_gates, 1);
        assert_eq!(s.or_gates, 1);
        assert_eq!(s.not_gates, 1);
        assert_eq!(s.var_gates, 3);
        assert_eq!(s.edges, 5);
        assert_eq!(s.depth, 2);
        assert!(s.to_string().contains("6 gates"));
    }

    #[test]
    fn empty_connectives() {
        let mut c = Circuit::new();
        let t = c.and(vec![]);
        let f = c.or(vec![]);
        assert!(c.eval(t, &|_| false));
        assert!(!c.eval(f, &|_| true));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn dangling_input_rejected() {
        let mut c = Circuit::new();
        c.add(Gate::Not(GateId(5)));
    }

    #[test]
    fn from_gates_replays_an_arena_exactly() {
        let (c, root) = sample();
        let rebuilt = Circuit::from_gates(c.gates().to_vec()).unwrap();
        assert_eq!(rebuilt.gates(), c.gates(), "same gates, same ids");
        for bits in 0..8u32 {
            assert_eq!(
                rebuilt.eval(root, &|v| (bits >> v) & 1 == 1),
                c.eval(root, &|v| (bits >> v) & 1 == 1)
            );
        }
        assert_eq!(rebuilt.stats(), c.stats());
        // Hash-consing is live again: adding an existing gate dedups.
        let mut rebuilt = rebuilt;
        let x0 = rebuilt.var(0);
        assert_eq!(x0, GateId(0));
        assert_eq!(rebuilt.len(), c.len());
    }

    #[test]
    fn from_gates_rejects_each_structural_violation() {
        // Forward (non-topological) input.
        assert_eq!(
            Circuit::from_gates(vec![Gate::Not(GateId(1)), Gate::Var(0)]).unwrap_err(),
            CircuitError::DanglingInput { gate: 0, input: 1 }
        );
        // Dangling input past the arena.
        assert_eq!(
            Circuit::from_gates(vec![Gate::Var(0), Gate::And(vec![GateId(0), GateId(9)])])
                .unwrap_err(),
            CircuitError::DanglingInput { gate: 1, input: 9 }
        );
        // Self-reference.
        assert_eq!(
            Circuit::from_gates(vec![Gate::Or(vec![GateId(0)])]).unwrap_err(),
            CircuitError::DanglingInput { gate: 0, input: 0 }
        );
        // Duplicate structural gate (hash-consing violated).
        assert_eq!(
            Circuit::from_gates(vec![Gate::Var(3), Gate::Var(3)]).unwrap_err(),
            CircuitError::DuplicateGate { gate: 1 }
        );
        assert!(CircuitError::DuplicateGate { gate: 1 }
            .to_string()
            .contains("hash-consing"));
    }

    #[test]
    fn lane_batched_walk_is_bit_identical_to_scalar() {
        // x0 ∨ (¬x0 ∧ x1): a valid d-D, so the probability semantics are
        // meaningful — and bit-identity must hold lane by lane.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let n0 = c.not(x0);
        let a = c.and(vec![n0, x1]);
        let root = c.or(vec![x0, a]);

        let mut probs = ProbMatrix::new();
        probs.reset(2);
        let mut scenario = |lane: usize| {
            let p0 = 0.05 + 0.11 * lane as f64;
            let p1 = 1.0 / (lane as f64 + 3.0);
            probs.set(0, lane, p0);
            probs.set(1, lane, p1);
            (p0, p1)
        };
        let expected: Vec<f64> = (0..LANES)
            .map(|lane| {
                let (p0, p1) = scenario(lane);
                c.probability_f64(root, &|v| if v == 0 { p0 } else { p1 })
            })
            .collect();
        let mut scratch = EvalScratch::new();
        let got = c.probability_f64_many(root, &probs, &mut scratch);
        for lane in 0..LANES {
            assert_eq!(got[lane].to_bits(), expected[lane].to_bits(), "lane {lane}");
        }
        // Scratch reuse across calls changes nothing.
        let again = c.probability_f64_many(root, &probs, &mut scratch);
        assert_eq!(again, got);
    }

    #[test]
    fn lane_batched_walk_handles_constants_and_empty_connectives() {
        let mut c = Circuit::new();
        let t = c.and(vec![]); // empty ∧ = ⊤
        let f = c.or(vec![]); // empty ∨ = ⊥
        let probs = ProbMatrix::new();
        let mut scratch = EvalScratch::new();
        assert_eq!(
            c.probability_f64_many(t, &probs, &mut scratch),
            [1.0; LANES]
        );
        assert_eq!(
            c.probability_f64_many(f, &probs, &mut scratch),
            [0.0; LANES]
        );
    }

    #[test]
    fn circuits_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        // Sharded evaluation walks one circuit from many threads; this
        // fails to compile if interior mutability ever creeps in.
        assert_send_sync::<Circuit>();

        // And the walks really are `&self`: concurrent probability
        // passes over a shared circuit agree with the single-threaded
        // answer.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let n0 = c.not(x0);
        let a = c.and(vec![n0, x1]);
        let root = c.or(vec![x0, a]);
        let expected = c.probability_f64(root, &|v| if v == 0 { 0.5 } else { 0.25 });
        let shared = std::sync::Arc::new(c);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    let p = c.probability_f64(root, &|v| if v == 0 { 0.5 } else { 0.25 });
                    assert!((p - expected).abs() < 1e-15);
                });
            }
        });
    }
}
