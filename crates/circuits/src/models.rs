//! Downstream knowledge-compilation tasks on OBDD lineages.
//!
//! The paper's introduction motivates the intensional approach by the
//! reusability of compiled lineages: "we could for instance update the
//! tuples' probabilities and compute the new result easily, or compute
//! the most probable state of the data that satisfies the query, or
//! enumerate satisfying states with constant delay, or produce random
//! samples of satisfying states". This module implements those tasks on
//! reduced OBDDs:
//!
//! * [`ObddManager::most_probable_model`] — arg-max of the world
//!   distribution restricted to satisfying worlds (max-product pass);
//! * [`ObddManager::sample_model`] — exact posterior sampling of a
//!   satisfying world (top-down, proportional to world probability);
//! * [`ObddManager::enumerate_models`] — ordered enumeration of
//!   satisfying assignments with polynomial delay.

use std::collections::HashMap;

use crate::obdd::{NodeRef, ObddManager};

impl ObddManager {
    /// The most probable satisfying assignment under independent
    /// per-variable probabilities, or `None` if the function is
    /// unsatisfiable. Returns `(assignment bitmask over order positions,
    /// probability)`.
    ///
    /// Max-product dynamic programming: at each node take the better of
    /// `p·best(hi)` and `(1-p)·best(lo)`; skipped variables contribute
    /// their individually-better factor.
    pub fn most_probable_model(
        &self,
        r: NodeRef,
        prob: &impl Fn(u32) -> f64,
    ) -> Option<(Vec<bool>, f64)> {
        if r == NodeRef::FALSE {
            return None;
        }
        let num_levels = self.order().len() as u32;
        // best[node] = (probability of the best completion strictly below
        // the node's level, choices along the way)
        let mut memo: HashMap<NodeRef, f64> = HashMap::new();
        // Per-level factor for variables skipped by reduction.
        let level_best: Vec<f64> = self
            .order()
            .iter()
            .map(|&v| {
                let p = prob(v);
                p.max(1.0 - p)
            })
            .collect();
        // Product of best factors for levels in [from, to).
        let span =
            |from: u32, to: u32| -> f64 { level_best[from as usize..to as usize].iter().product() };
        fn best(
            m: &ObddManager,
            r: NodeRef,
            prob: &impl Fn(u32) -> f64,
            span: &impl Fn(u32, u32) -> f64,
            memo: &mut HashMap<NodeRef, f64>,
        ) -> f64 {
            // Value over levels >= level(r) (node's own level included).
            match r {
                NodeRef::FALSE => f64::NEG_INFINITY,
                NodeRef::TRUE => 1.0,
                _ => {
                    if let Some(&b) = memo.get(&r) {
                        return b;
                    }
                    let (level, lo, hi) = m.node_parts(r);
                    let var = m.order()[level as usize];
                    let p = prob(var);
                    let hi_val =
                        best(m, hi, prob, span, memo) * span(level + 1, m.resolve_level(hi));
                    let lo_val =
                        best(m, lo, prob, span, memo) * span(level + 1, m.resolve_level(lo));
                    let b = (p * hi_val).max((1.0 - p) * lo_val);
                    memo.insert(r, b);
                    b
                }
            }
        }
        let top_level = self.resolve_level(r);
        let total = best(self, r, prob, &span, &mut memo) * span(0, top_level);
        if total == f64::NEG_INFINITY {
            return None;
        }
        // Reconstruct choices top-down.
        let mut assignment = vec![false; self.order().len()];
        // Greedy per-skipped-level choice.
        let fill_skipped = |assignment: &mut Vec<bool>, from: u32, to: u32| {
            for l in from..to {
                let p = prob(self.order()[l as usize]);
                assignment[l as usize] = p >= 0.5;
            }
        };
        let mut cur = r;
        let mut frontier = 0u32;
        while cur != NodeRef::TRUE {
            let (level, lo, hi) = self.node_parts(cur);
            fill_skipped(&mut assignment, frontier, level);
            let var = self.order()[level as usize];
            let p = prob(var);
            let hi_val =
                best(self, hi, prob, &span, &mut memo) * span(level + 1, self.resolve_level(hi));
            let lo_val =
                best(self, lo, prob, &span, &mut memo) * span(level + 1, self.resolve_level(lo));
            if p * hi_val >= (1.0 - p) * lo_val {
                assignment[level as usize] = true;
                cur = hi;
            } else {
                assignment[level as usize] = false;
                cur = lo;
            }
            frontier = level + 1;
            if cur == NodeRef::FALSE {
                unreachable!("best path never enters FALSE");
            }
        }
        fill_skipped(&mut assignment, frontier, num_levels);
        Some((assignment, total))
    }

    /// Draws a satisfying assignment with probability proportional to its
    /// world probability (i.e. from the posterior given the query holds).
    /// Returns `None` for the unsatisfiable function.
    pub fn sample_model(
        &self,
        r: NodeRef,
        prob: &impl Fn(u32) -> f64,
        rng: &mut impl rand::Rng,
    ) -> Option<Vec<bool>> {
        if r == NodeRef::FALSE {
            return None;
        }
        let num_levels = self.order().len() as u32;
        let mut assignment = vec![false; self.order().len()];
        // Pre-compute satisfaction probabilities per node once.
        let mut probs: HashMap<NodeRef, f64> = HashMap::new();
        let node_prob = |m: &ObddManager, x: NodeRef, probs: &mut HashMap<NodeRef, f64>| {
            if let Some(&p) = probs.get(&x) {
                p
            } else {
                let p = m.probability_f64(x, prob);
                probs.insert(x, p);
                p
            }
        };
        let mut cur = r;
        let mut frontier = 0u32;
        loop {
            let level = self.resolve_level(cur);
            // Variables skipped above `cur` are unconstrained: sample from
            // their prior.
            for l in frontier..level.min(num_levels) {
                let p = prob(self.order()[l as usize]);
                assignment[l as usize] = rng.random::<f64>() < p;
            }
            if cur == NodeRef::TRUE {
                return Some(assignment);
            }
            let (lvl, lo, hi) = self.node_parts(cur);
            let var = self.order()[lvl as usize];
            let p = prob(var);
            let w_hi = p * node_prob(self, hi, &mut probs);
            let w_lo = (1.0 - p) * node_prob(self, lo, &mut probs);
            let take_hi = rng.random::<f64>() * (w_hi + w_lo) < w_hi;
            assignment[lvl as usize] = take_hi;
            cur = if take_hi { hi } else { lo };
            debug_assert_ne!(cur, NodeRef::FALSE, "conditional sampling avoids FALSE");
            frontier = lvl + 1;
        }
    }

    /// Enumerates up to `limit` satisfying assignments (over the full
    /// variable order, in lexicographic order of the assignment vector,
    /// `false < true`), with polynomial delay per model.
    pub fn enumerate_models(&self, r: NodeRef, limit: usize) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        let n = self.order().len();
        let mut partial = vec![false; n];
        self.enum_rec(r, 0, &mut partial, &mut out, limit);
        out
    }

    fn enum_rec(
        &self,
        r: NodeRef,
        level: u32,
        partial: &mut Vec<bool>,
        out: &mut Vec<Vec<bool>>,
        limit: usize,
    ) {
        if out.len() >= limit || r == NodeRef::FALSE {
            return;
        }
        let n = self.order().len() as u32;
        if level == n {
            debug_assert_eq!(r, NodeRef::TRUE);
            out.push(partial.clone());
            return;
        }
        let node_level = self.resolve_level(r);
        for value in [false, true] {
            if out.len() >= limit {
                return;
            }
            partial[level as usize] = value;
            let next = if node_level == level {
                let (_, lo, hi) = self.node_parts(r);
                if value {
                    hi
                } else {
                    lo
                }
            } else {
                r // skipped level: both branches continue at r
            };
            self.enum_rec(next, level + 1, partial, out, limit);
        }
        partial[level as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor3() -> (ObddManager, NodeRef) {
        let mut m = ObddManager::new(vec![0, 1, 2]);
        let a = m.literal(0, true);
        let b = m.literal(1, true);
        let c = m.literal(2, true);
        let ab = m.xor(a, b);
        let f = m.xor(ab, c);
        (m, f)
    }

    #[test]
    fn most_probable_model_on_xor() {
        let (m, f) = xor3();
        // p = (0.9, 0.8, 0.1): best satisfying world of xor (odd number
        // of trues): {0,1} true, 2 false → 0.9*0.8*0.9 = 0.648... wait
        // that's two trues (even). Satisfying candidates: the best is
        // 0 true, 1 true, 2 true? that's all three... enumerate in test.
        let probs = [0.9, 0.8, 0.1];
        let pf = |v: u32| probs[v as usize];
        let (model, p) = m.most_probable_model(f, &pf).expect("satisfiable");
        // Cross-check against exhaustive enumeration.
        let mut best = (Vec::new(), -1.0f64);
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            if !m.eval(f, &|v| assign[v as usize]) {
                continue;
            }
            let w: f64 = (0..3)
                .map(|i| if assign[i] { probs[i] } else { 1.0 - probs[i] })
                .product();
            if w > best.1 {
                best = (assign, w);
            }
        }
        assert_eq!(model, best.0);
        assert!((p - best.1).abs() < 1e-12, "{p} vs {}", best.1);
    }

    #[test]
    fn most_probable_model_handles_skipped_levels() {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let f = m.literal(2, true); // levels 0,1,3 unconstrained
        let pf = |v: u32| [0.9, 0.2, 0.5, 0.7][v as usize];
        let (model, p) = m.most_probable_model(f, &pf).unwrap();
        assert_eq!(model, vec![true, false, true, true]);
        assert!((p - 0.9 * 0.8 * 0.5 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn unsat_has_no_model() {
        let m = ObddManager::new(vec![0, 1]);
        assert!(m.most_probable_model(NodeRef::FALSE, &|_| 0.5).is_none());
        let mut rng = StdRng::seed_from_u64(1);
        let mut m2 = ObddManager::new(vec![0]);
        let _ = &mut m2;
        assert!(m.sample_model(NodeRef::FALSE, &|_| 0.5, &mut rng).is_none());
        assert!(m.enumerate_models(NodeRef::FALSE, 10).is_empty());
    }

    #[test]
    fn samples_are_models_and_roughly_distributed() {
        let (m, f) = xor3();
        let pf = |_: u32| 0.5;
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts: HashMap<Vec<bool>, u32> = HashMap::new();
        for _ in 0..4000 {
            let s = m.sample_model(f, &pf, &mut rng).unwrap();
            assert!(m.eval(f, &|v| s[v as usize]), "sample must satisfy");
            *counts.entry(s).or_insert(0) += 1;
        }
        // 4 models, uniform weights: each ≈ 1000.
        assert_eq!(counts.len(), 4);
        for (model, c) in counts {
            assert!((800..1200).contains(&c), "model {model:?} count {c}");
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let mut m = ObddManager::new(vec![0]);
        let x = m.literal(0, true);
        let t = m.not(x);
        let f = m.or(x, t); // tautology: every world satisfies
        let pf = |_: u32| 0.25;
        let mut rng = StdRng::seed_from_u64(11);
        let mut trues = 0u32;
        for _ in 0..4000 {
            if m.sample_model(f, &pf, &mut rng).unwrap()[0] {
                trues += 1;
            }
        }
        // Expect ~1000 (p = 0.25).
        assert!((800..1200).contains(&trues), "{trues}");
    }

    #[test]
    fn enumeration_is_exhaustive_ordered_and_bounded() {
        let (m, f) = xor3();
        let all = m.enumerate_models(f, usize::MAX);
        assert_eq!(all.len(), 4); // xor of 3 vars: 4 odd-parity models
        for model in &all {
            assert!(m.eval(f, &|v| model[v as usize]));
        }
        // Lexicographic order, false < true.
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
        // Limit respected.
        assert_eq!(m.enumerate_models(f, 2).len(), 2);
    }

    #[test]
    fn enumeration_counts_match_model_count() {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let a = m.literal(0, true);
        let c = m.literal(2, true);
        let f = m.or(a, c);
        let models = m.enumerate_models(f, usize::MAX);
        assert_eq!(models.len() as u64, m.model_count(f).to_u64().unwrap());
    }
}
