//! The lane-batched evaluation kernel's data plane: a
//! structure-of-arrays probability matrix and a reusable scratch arena.
//!
//! Once a d-D or OBDD is compiled, probability evaluation is a *linear*
//! walk of an immutable artifact — yet a scalar walk per scenario pays a
//! fresh buffer allocation, a full gate decode, and a closure call per
//! variable, per scenario. The kernel amortizes all three: one forward
//! pass over the gate (or node) table computes [`LANES`] scenarios at
//! once, reading per-variable probabilities from a [`ProbMatrix`] block
//! and keeping every intermediate in an [`EvalScratch`] that is grown
//! once and reused forever (zero heap allocations in steady state).
//!
//! **Bit-identity contract.** Each lane performs *exactly* the f64
//! operations of the scalar walk, in the same order: `∧`-gates fold a
//! product left-to-right over their inputs, `∨`-gates a sum, `¬`-gates
//! compute `1 - x`, and OBDD nodes compute `p·hi + (1 - p)·lo`. IEEE 754
//! arithmetic is deterministic, so lane `l` of
//! [`Circuit::probability_f64_many`](crate::Circuit::probability_f64_many)
//! is bit-identical to
//! [`Circuit::probability_f64`](crate::Circuit::probability_f64) under
//! lane `l`'s probabilities — batching is a performance knob, never a
//! semantics knob. The fixed-width inner loops over `LANES` are what
//! lets the compiler auto-vectorize the pass without changing that
//! order.
//!
//! See `DESIGN.md` §6 for the layout diagrams and the zero-allocation
//! argument; the `kernel` bench (E21 in `EXPERIMENTS.md`) measures the
//! payoff.

/// Number of scenarios one kernel invocation evaluates together.
///
/// Eight `f64` lanes fill one 64-byte cache line per variable block and
/// map onto one AVX-512 register (or two AVX2 / four NEON registers), so
/// the auto-vectorized inner loops stay register-resident. Ragged batch
/// tails simply leave trailing lanes unused — callers read back only the
/// lanes they filled.
pub const LANES: usize = 8;

/// Per-variable probabilities for a block of up to [`LANES`] scenarios,
/// in structure-of-arrays layout: variable-major, lane-minor, so the
/// `LANES` probabilities of one variable are one contiguous (and
/// cache-line-aligned-in-practice) block.
///
/// The matrix is a plain dense buffer indexed by variable id — in this
/// project variable ids are [`TupleId`]s, which are dense by
/// construction — and is meant to be **reused across blocks**:
/// [`reset`](Self::reset) only grows the backing storage, never shrinks
/// or reallocates it once the high-water mark is reached.
///
/// [`TupleId`]: https://docs.rs/intext-tid
#[derive(Clone, Debug, Default)]
pub struct ProbMatrix {
    vars: usize,
    data: Vec<f64>,
}

impl ProbMatrix {
    /// An empty matrix; size it with [`reset`](Self::reset).
    pub fn new() -> Self {
        ProbMatrix::default()
    }

    /// Prepares the matrix for a block over variables `0..vars`,
    /// growing the backing buffer if this is the largest block seen so
    /// far (newly grown lanes start at `0.0`). Lane contents from a
    /// previous block persist — callers overwrite every lane they will
    /// read back, and unread lanes are never observable.
    pub fn reset(&mut self, vars: usize) {
        self.vars = vars;
        let need = vars * LANES;
        if self.data.len() < need {
            self.data.resize(need, 0.0);
        }
    }

    /// Number of variables the matrix currently covers.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Sets variable `var`'s probability in scenario lane `lane`.
    ///
    /// # Panics
    /// Panics if `lane >= LANES` or `var` is outside the
    /// [`reset`](Self::reset) range.
    pub fn set(&mut self, var: u32, lane: usize, p: f64) {
        assert!(lane < LANES, "lane {lane} out of range");
        assert!((var as usize) < self.vars, "variable {var} out of range");
        self.data[var as usize * LANES + lane] = p;
    }

    /// The contiguous lane block of one variable.
    #[inline]
    pub(crate) fn block(&self, var: u32) -> &[f64; LANES] {
        // Same contract as `set`: reads outside the `reset` range would
        // silently see stale data from an earlier, larger block (the
        // backing buffer never shrinks), so catch the misuse in debug
        // builds rather than index arithmetic hiding it.
        debug_assert!((var as usize) < self.vars, "variable {var} out of range");
        self.data[var as usize * LANES..][..LANES]
            .try_into()
            .expect("block is exactly LANES wide")
    }
}

/// Reusable dense buffers for the lane-batched walks — the reason a
/// steady-state batch evaluation performs **zero heap allocations per
/// scenario**.
///
/// All buffers grow to the largest artifact walked through them and are
/// then reused verbatim: value lanes are overwritten by the forward
/// pass, the OBDD reachability marks are un-set via the visit list
/// (never a full clear), and the work stacks keep their capacity across
/// calls (`Vec::clear` does not release storage). One scratch serves
/// both artifact kinds; shard workers each own one so walks stay free of
/// shared mutable state.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Gate- (or node-) major value lanes: `LANES` running `f64`s per
    /// arena slot.
    pub(crate) lanes: Vec<f64>,
    /// OBDD reachability marks, indexed by node index; always all-false
    /// between walks.
    pub(crate) visited: Vec<bool>,
    /// DFS work stack for the OBDD reachability pass.
    pub(crate) stack: Vec<u32>,
    /// Reachable node indices in ascending (= topological) order.
    pub(crate) topo: Vec<u32>,
}

impl EvalScratch {
    /// A fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Grows the value-lane buffer to at least `slots * LANES` (growth
    /// only — steady-state calls are allocation-free).
    pub(crate) fn ensure_lanes(&mut self, slots: usize) {
        let need = slots * LANES;
        if self.lanes.len() < need {
            self.lanes.resize(need, 0.0);
        }
    }

    /// Grows the reachability marks to cover `nodes` arena slots.
    pub(crate) fn ensure_visited(&mut self, nodes: usize) {
        if self.visited.len() < nodes {
            self.visited.resize(nodes, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_variable_major_lane_minor() {
        let mut m = ProbMatrix::new();
        m.reset(3);
        assert_eq!(m.vars(), 3);
        m.set(0, 0, 0.25);
        m.set(0, 7, 0.75);
        m.set(2, 3, 0.5);
        assert_eq!(m.block(0)[0], 0.25);
        assert_eq!(m.block(0)[7], 0.75);
        assert_eq!(m.block(2)[3], 0.5);
        assert_eq!(m.block(1), &[0.0; LANES]);
    }

    #[test]
    fn matrix_reset_grows_but_never_shrinks() {
        let mut m = ProbMatrix::new();
        m.reset(4);
        m.set(3, 1, 0.9);
        m.reset(2);
        assert_eq!(m.vars(), 2);
        m.reset(4);
        // The high-water buffer persisted; stale lanes are defined
        // (previous contents), just unread by well-behaved callers.
        assert_eq!(m.block(3)[1], 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn matrix_rejects_out_of_range_vars() {
        let mut m = ProbMatrix::new();
        m.reset(2);
        m.set(2, 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn matrix_rejects_out_of_range_lanes() {
        let mut m = ProbMatrix::new();
        m.reset(2);
        m.set(0, LANES, 0.5);
    }

    #[test]
    fn scratch_buffers_grow_once_and_stay() {
        let mut s = EvalScratch::new();
        s.ensure_lanes(4);
        assert_eq!(s.lanes.len(), 4 * LANES);
        s.lanes[0] = 1.0;
        // A smaller request reuses the same storage.
        s.ensure_lanes(2);
        assert_eq!(s.lanes.len(), 4 * LANES);
        assert_eq!(s.lanes[0], 1.0);
        s.ensure_visited(5);
        assert_eq!(s.visited.len(), 5);
        assert!(s.stack.is_empty() && s.topo.is_empty());
    }
}
