//! Property-based tests for the knowledge-compilation substrate: OBDD
//! operations against truth-table semantics, circuit conversions, and
//! the downstream model tasks.

use intext_circuits::{NodeRef, ObddManager};
use proptest::prelude::*;

/// Builds the OBDD of an arbitrary 4-variable function (truth table `t`)
/// by Shannon expansion through `mk`. At recursion depth `level` the
/// table is densely re-indexed over the remaining `4 - level` variables,
/// with the current variable at the lowest dense bit.
fn obdd_of(m: &mut ObddManager, t: u16) -> NodeRef {
    fn rec(m: &mut ObddManager, t: u16, level: u32) -> NodeRef {
        let remaining = 4 - level;
        if remaining == 0 {
            return if t & 1 == 1 {
                NodeRef::TRUE
            } else {
                NodeRef::FALSE
            };
        }
        let mut lo_bits = 0u16;
        let mut hi_bits = 0u16;
        for v in 0..(1u32 << remaining) {
            if (t >> v) & 1 == 1 {
                if v & 1 == 0 {
                    lo_bits |= 1 << (v >> 1);
                } else {
                    hi_bits |= 1 << (v >> 1);
                }
            }
        }
        let lo = rec(m, lo_bits, level + 1);
        let hi = rec(m, hi_bits, level + 1);
        m.mk(level, lo, hi)
    }
    rec(m, t, 0)
}

fn eval_table(t: u16, bits: u32) -> bool {
    (t >> bits) & 1 == 1
}

proptest! {
    #[test]
    fn obdd_construction_matches_table(t in any::<u16>()) {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let f = obdd_of(&mut m, t);
        for bits in 0..16u32 {
            prop_assert_eq!(m.eval(f, &|v| (bits >> v) & 1 == 1), eval_table(t, bits));
        }
    }

    #[test]
    fn apply_ops_match_tables(a in any::<u16>(), b in any::<u16>()) {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let fa = obdd_of(&mut m, a);
        let fb = obdd_of(&mut m, b);
        let and = m.and(fa, fb);
        let or = m.or(fa, fb);
        let xor = m.xor(fa, fb);
        let not = m.not(fa);
        for bits in 0..16u32 {
            let assign = |v: u32| (bits >> v) & 1 == 1;
            prop_assert_eq!(m.eval(and, &assign), eval_table(a & b, bits));
            prop_assert_eq!(m.eval(or, &assign), eval_table(a | b, bits));
            prop_assert_eq!(m.eval(xor, &assign), eval_table(a ^ b, bits));
            prop_assert_eq!(m.eval(not, &assign), eval_table(!a, bits));
        }
    }

    #[test]
    fn canonicity_table_equality_is_ref_equality(a in any::<u16>(), b in any::<u16>()) {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let fa = obdd_of(&mut m, a);
        let fb = obdd_of(&mut m, b);
        prop_assert_eq!(fa == fb, a == b);
    }

    #[test]
    fn model_count_matches_popcount(t in any::<u16>()) {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let f = obdd_of(&mut m, t);
        prop_assert_eq!(m.model_count(f).to_u64(), Some(u64::from(t.count_ones())));
    }

    #[test]
    fn probability_matches_weighted_enumeration(t in any::<u16>(), seed in any::<u32>()) {
        let probs: Vec<f64> = (0..4)
            .map(|i| f64::from((seed >> (8 * i)) & 0xff) / 255.0)
            .collect();
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let f = obdd_of(&mut m, t);
        let via_obdd = m.probability_f64(f, &|v| probs[v as usize]);
        let mut direct = 0.0;
        for bits in 0..16u32 {
            if !eval_table(t, bits) {
                continue;
            }
            let mut w = 1.0;
            for (i, p) in probs.iter().enumerate() {
                w *= if (bits >> i) & 1 == 1 { *p } else { 1.0 - *p };
            }
            direct += w;
        }
        prop_assert!((via_obdd - direct).abs() < 1e-9, "{} vs {}", via_obdd, direct);
    }

    #[test]
    fn to_circuit_preserves_semantics_and_dd(t in any::<u16>()) {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let f = obdd_of(&mut m, t);
        let (c, root) = m.to_circuit(f);
        intext_circuits::verify::check_dd(&c, root).expect("OBDDs are d-Ds");
        for bits in 0..16u32 {
            prop_assert_eq!(c.eval(root, &|v| (bits >> v) & 1 == 1), eval_table(t, bits));
        }
        // d-D model counting agrees with the OBDD's.
        let count = c.model_count_dd(root, &[0, 1, 2, 3]);
        prop_assert_eq!(
            count.numer().to_i64().unwrap(),
            i64::from(t.count_ones())
        );
    }

    #[test]
    fn enumerate_models_agrees_with_table(t in any::<u16>()) {
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let f = obdd_of(&mut m, t);
        let models = m.enumerate_models(f, usize::MAX);
        prop_assert_eq!(models.len(), t.count_ones() as usize);
        for model in models {
            let bits: u32 = model
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| 1u32 << i)
                .sum();
            prop_assert!(eval_table(t, bits));
        }
    }

    #[test]
    fn most_probable_model_beats_all_models(t in 1u16.., seed in any::<u32>()) {
        let probs: Vec<f64> = (0..4)
            .map(|i| (f64::from((seed >> (8 * i)) & 0xff) + 0.5) / 256.0)
            .collect();
        let mut m = ObddManager::new(vec![0, 1, 2, 3]);
        let f = obdd_of(&mut m, t);
        prop_assume!(f != NodeRef::FALSE);
        let (model, p) = m.most_probable_model(f, &|v| probs[v as usize]).unwrap();
        prop_assert!(m.eval(f, &|v| model[v as usize]), "MPE must satisfy");
        for bits in 0..16u32 {
            if !eval_table(t, bits) {
                continue;
            }
            let mut w = 1.0;
            for (i, pr) in probs.iter().enumerate() {
                w *= if (bits >> i) & 1 == 1 { *pr } else { 1.0 - *pr };
            }
            prop_assert!(p >= w - 1e-12, "world {bits:#x} has weight {w} > {p}");
        }
    }
}
