//! The zero-allocation claim of the lane-batched kernel, asserted for
//! real: a counting global allocator measures that steady-state
//! `probability_f64_many` walks — circuit and OBDD alike, including the
//! `ProbMatrix` refills between blocks — perform **zero** heap
//! allocations once the scratch has grown to the artifact's size.
//!
//! This file holds exactly one `#[test]` on purpose: the allocation
//! counter is process-global, and a sibling test allocating on another
//! harness thread would show up as a false positive.

// The counting allocator is the one place the workspace needs `unsafe`:
// `GlobalAlloc` is an unsafe trait by definition. Every method delegates
// straight to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use intext_circuits::{Circuit, EvalScratch, ObddManager, ProbMatrix, LANES};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A moderately sized d-D-shaped circuit: a balanced ∨-tree over
/// `(x_{2i} ∧ ¬x_{2i+1})` leaves (structure is irrelevant here — only
/// the walk's allocation behaviour is under test).
fn test_circuit(pairs: u32) -> (Circuit, intext_circuits::GateId) {
    let mut c = Circuit::new();
    let mut layer: Vec<_> = (0..pairs)
        .map(|i| {
            let a = c.var(2 * i);
            let b = c.var(2 * i + 1);
            let nb = c.not(b);
            c.and(vec![a, nb])
        })
        .collect();
    while layer.len() > 1 {
        layer = layer.chunks(2).map(|pair| c.or(pair.to_vec())).collect();
    }
    (c, layer[0])
}

/// A chain OBDD x0 ∧ x1 ∧ … ∧ x_{n-1} over the same variable space.
fn test_obdd(vars: u32) -> (ObddManager, intext_circuits::NodeRef) {
    let mut m = ObddManager::new((0..vars).collect());
    let mut node = intext_circuits::NodeRef::TRUE;
    for level in (0..vars).rev() {
        node = m.mk(level, intext_circuits::NodeRef::FALSE, node);
    }
    (m, node)
}

#[test]
fn steady_state_lane_walks_do_not_allocate() {
    const VARS: u32 = 256;
    let (circuit, root) = test_circuit(VARS / 2);
    let (obdd, obdd_root) = test_obdd(VARS);

    let mut probs = ProbMatrix::new();
    let mut scratch = EvalScratch::new();
    let refill = |probs: &mut ProbMatrix, round: u64| {
        probs.reset(VARS as usize);
        for v in 0..VARS {
            for lane in 0..LANES {
                probs.set(
                    v,
                    lane,
                    1.0 / (2.0 + f64::from(v) + (lane as u64 + round) as f64),
                );
            }
        }
    };

    // Warm-up: grows the matrix and both scratch regions (circuit lanes
    // are the larger, OBDD adds the mark/stack/topo buffers).
    refill(&mut probs, 0);
    let warm_c = circuit.probability_f64_many(root, &probs, &mut scratch);
    let warm_o = obdd.probability_f64_many(obdd_root, &probs, &mut scratch);

    // Steady state: many "scenario blocks" — refill + both walks — with
    // the allocation counter watching.
    let before = allocations();
    let mut acc = 0.0;
    for round in 1..=50u64 {
        refill(&mut probs, round);
        let c = circuit.probability_f64_many(root, &probs, &mut scratch);
        let o = obdd.probability_f64_many(obdd_root, &probs, &mut scratch);
        acc += c[0] + o[LANES - 1];
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state lane walks must not touch the heap"
    );
    assert!(acc.is_finite());

    // And the warm-up results stay reproducible through the reused
    // scratch (guards against stale state masquerading as reuse).
    refill(&mut probs, 0);
    assert_eq!(
        circuit.probability_f64_many(root, &probs, &mut scratch),
        warm_c
    );
    assert_eq!(
        obdd.probability_f64_many(obdd_root, &probs, &mut scratch),
        warm_o
    );
}
