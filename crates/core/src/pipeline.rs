//! The end-to-end d-D compilation pipeline (Theorem 5.2 /
//! Proposition 4.4): `e(φ) = 0  ⟹  Q_φ ∈ d-D(PTIME)`.
//!
//! Fragmentation produces a `¬`-`∨`-template over degenerate
//! pair-functions; each leaf is compiled to an OBDD by `intext-lineage`
//! (Proposition 3.7), embedded as circuit gates, and the template is
//! replayed on top. Determinism of the template's `∨` gates holds by
//! construction: the lineage map `α ↦ Lin(Q_α, D)` is a homomorphism
//! from Boolean functions over `V` to Boolean functions over tuples, so
//! disjointness at the `φ` level transfers to the lineage level.

use std::fmt;

use intext_boolfn::BoolFn;
use intext_circuits::{Circuit, CircuitStats, GateId};
use intext_lineage::{compile_degenerate_obdd, DegenerateLineage, LineageError};
use intext_numeric::BigRational;
use intext_tid::{Database, Tid, TupleId};

use crate::template::{Fragmentation, Template};
use crate::transform::TransformError;

/// Errors from the pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The technique applies exactly to `e(φ) = 0` (Theorem 5.2 /
    /// Corollary 5.4); other functions are `#P`-hard or open (Figure 1).
    NonZeroEuler(i64),
    /// A leaf failed to compile (vocabulary mismatch).
    Lineage(LineageError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NonZeroEuler(e) => {
                write!(
                    f,
                    "d-D pipeline requires e(φ) = 0, got {e} (query is not safe)"
                )
            }
            CompileError::Lineage(e) => write!(f, "leaf compilation failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LineageError> for CompileError {
    fn from(e: LineageError) -> Self {
        CompileError::Lineage(e)
    }
}

impl From<TransformError> for CompileError {
    fn from(e: TransformError) -> Self {
        match e {
            TransformError::NonZeroEuler(v) => CompileError::NonZeroEuler(v),
            other => unreachable!("steps_to_bottom only fails on Euler: {other:?}"),
        }
    }
}

/// A compiled lineage: a deterministic decomposable circuit for
/// `Lin(Q_φ, D)`, plus the fragmentation it was built from.
#[derive(Debug)]
pub struct CompiledLineage {
    /// The circuit arena.
    pub circuit: Circuit,
    /// Root gate of the lineage function.
    pub root: GateId,
    /// The fragmentation witness (template + degenerate leaves).
    pub fragmentation: Fragmentation,
    /// The per-leaf OBDD lineages the circuit was plugged from, aligned
    /// with `fragmentation.leaves`. Kept so single-tuple updates can
    /// re-plug only the leaves via [`patched`](Self::patched); empty for
    /// circuits rebuilt from serialized bytes (which recompile on shape
    /// changes instead).
    pub leaf_lineages: Vec<DegenerateLineage>,
}

impl CompiledLineage {
    /// Exact probability under the TID's tuple probabilities — one
    /// bottom-up pass over the d-D.
    pub fn probability_exact(&self, tid: &Tid) -> BigRational {
        self.circuit
            .probability_exact(self.root, &|v| tid.prob(TupleId(v)).clone())
    }

    /// Floating-point probability.
    pub fn probability_f64(&self, tid: &Tid) -> f64 {
        self.circuit
            .probability_f64(self.root, &|v| tid.prob_f64(TupleId(v)))
    }

    /// Circuit statistics (size of the compiled representation).
    pub fn stats(&self) -> CircuitStats {
        self.circuit.stats()
    }

    /// Evaluates the lineage on a concrete world (tuple-presence mask).
    pub fn eval_world(&self, world: u64) -> bool {
        self.circuit.eval(self.root, &|v| (world >> v) & 1 == 1)
    }

    /// Whether [`patched`](Self::patched) can succeed: the per-leaf
    /// lineages (with their unroll traces) are still attached.
    pub fn is_patchable(&self) -> bool {
        self.leaf_lineages.len() == self.fragmentation.num_leaves()
            && self.leaf_lineages.iter().all(|l| l.is_patchable())
    }

    /// Incrementally recompiles this d-D for `new_db`, given it was
    /// compiled against `old_db` (differing by at most one tuple) — the
    /// Theorem 5.2 patch path.
    ///
    /// Each degenerate leaf is patched through
    /// [`DegenerateLineage::patched`] (leaves whose split puts the
    /// changed tuple outside their `Π_L · Π_R` stream take the cheap
    /// remap-only path), and the `¬`-`∨`-template is re-plugged over the
    /// patched leaves. The template itself depends only on `φ`, so it is
    /// reused as-is. Because patched leaf OBDDs are canonically equal to
    /// freshly compiled ones and the gate instantiation order is a pure
    /// function of the leaf DAGs and the template, the resulting circuit
    /// answers every probability query **bit-identically** to a fresh
    /// `compile_dd(phi, new_db)`.
    ///
    /// Returns `None` when any leaf refuses (deserialized circuit, more
    /// than one slot changed, shape mismatch) — callers fall back to
    /// full recompilation.
    pub fn patched(&self, old_db: &Database, new_db: &Database) -> Option<CompiledLineage> {
        if self.leaf_lineages.len() != self.fragmentation.num_leaves() {
            return None;
        }
        let mut circuit = Circuit::new();
        let mut leaf_gates = Vec::with_capacity(self.leaf_lineages.len());
        let mut leaves = Vec::with_capacity(self.leaf_lineages.len());
        for lin in &self.leaf_lineages {
            let patched = lin.patched(old_db, new_db)?;
            leaf_gates.push(
                patched
                    .manager
                    .copy_into_circuit(patched.root, &mut circuit),
            );
            leaves.push(patched);
        }
        let root = instantiate(&self.fragmentation.template, &leaf_gates, &mut circuit);
        Some(CompiledLineage {
            circuit,
            root,
            fragmentation: self.fragmentation.clone(),
            leaf_lineages: leaves,
        })
    }
}

/// Theorem 5.2: compiles `Lin(Q_φ, D)` into a d-D in polynomial time,
/// for any `φ` with `e(φ) = 0` (in particular every safe `H⁺`-query,
/// Corollary 5.3).
pub fn compile_dd(phi: &BoolFn, db: &Database) -> Result<CompiledLineage, CompileError> {
    let frag = Fragmentation::of(phi)?;
    let mut circuit = Circuit::new();
    // Compile every degenerate leaf to an OBDD, then into shared gates.
    // The leaf lineages are kept on the result: their unroll traces are
    // what lets `CompiledLineage::patched` re-plug the template after a
    // tuple update instead of recompiling.
    let mut leaf_gates = Vec::with_capacity(frag.leaves.len());
    let mut leaf_lineages = Vec::with_capacity(frag.leaves.len());
    for leaf in &frag.leaves {
        let lin = compile_degenerate_obdd(leaf, db)?;
        leaf_gates.push(lin.manager.copy_into_circuit(lin.root, &mut circuit));
        leaf_lineages.push(lin);
    }
    let root = instantiate(&frag.template, &leaf_gates, &mut circuit);
    Ok(CompiledLineage {
        circuit,
        root,
        fragmentation: frag,
        leaf_lineages,
    })
}

fn instantiate(t: &Template, leaf_gates: &[GateId], c: &mut Circuit) -> GateId {
    match t {
        Template::Hole(i) => leaf_gates[*i],
        Template::Or(a, b) => {
            let ga = instantiate(a, leaf_gates, c);
            let gb = instantiate(b, leaf_gates, c);
            c.or(vec![ga, gb])
        }
        Template::Not(a) => {
            let ga = instantiate(a, leaf_gates, c);
            c.not(ga)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{max_euler_fn, phi9, phi_no_pm, small};
    use intext_circuits::verify;
    use intext_extensional::pqe_extensional;
    use intext_query::{pqe_brute_force, HQuery};
    use intext_tid::{complete_database, random_database, random_tid, DbGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn phi9_compiles_to_a_valid_dd() {
        let db = complete_database(3, 1); // small enough for exhaustive d-D check
        let compiled = compile_dd(&phi9(), &db).unwrap();
        verify::check_dd(&compiled.circuit, compiled.root).expect("valid d-D");
        // Lineage semantics on every world.
        let q = HQuery::new(phi9());
        for world in 0..(1u64 << db.len()) {
            assert_eq!(compiled.eval_world(world), q.lineage_eval(&db, world));
        }
    }

    #[test]
    fn phi9_probability_matches_extensional_and_brute_force() {
        let mut rng = StdRng::seed_from_u64(77);
        let db = random_database(
            &DbGenConfig {
                k: 3,
                domain_size: 2,
                density: 0.7,
                prob_denominator: 7,
            },
            &mut rng,
        );
        let tid = random_tid(db, 7, &mut rng);
        let compiled = compile_dd(&phi9(), tid.database()).unwrap();
        let q = HQuery::new(phi9());
        let intensional = compiled.probability_exact(&tid);
        let extensional = pqe_extensional(&q, &tid).unwrap();
        let brute = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(intensional, extensional, "intensional vs extensional");
        assert_eq!(intensional, brute, "intensional vs brute force");
    }

    #[test]
    fn non_monotone_zero_euler_queries_compile() {
        // The paper's point: the technique covers H-queries beyond UCQs.
        let phi = phi_no_pm(); // non-monotone, e = 0, k = 4
        let mut rng = StdRng::seed_from_u64(13);
        let db = random_database(
            &DbGenConfig {
                k: 4,
                domain_size: 2,
                density: 0.4,
                prob_denominator: 5,
            },
            &mut rng,
        );
        let tid = random_tid(db, 5, &mut rng);
        let compiled = compile_dd(&phi, tid.database()).unwrap();
        let q = HQuery::new(phi);
        let brute = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(compiled.probability_exact(&tid), brute);
    }

    #[test]
    fn hard_queries_rejected() {
        let db = complete_database(3, 2);
        let err = compile_dd(&max_euler_fn(4), &db).unwrap_err();
        assert_eq!(err, CompileError::NonZeroEuler(8));
    }

    #[test]
    fn all_zero_euler_functions_k2_compile_and_agree() {
        // Exhaustive Theorem 5.2 check at k = 2 against brute force.
        let mut rng = StdRng::seed_from_u64(5);
        let db = random_database(
            &DbGenConfig {
                k: 2,
                domain_size: 2,
                density: 0.75,
                prob_denominator: 4,
            },
            &mut rng,
        );
        let tid = random_tid(db, 4, &mut rng);
        let mut compiled_count = 0;
        for t in 0..256u64 {
            if small::euler(3, t) != 0 {
                continue;
            }
            let phi = BoolFn::from_table_u64(3, t);
            let compiled = compile_dd(&phi, tid.database()).unwrap();
            let q = HQuery::new(phi);
            let brute = pqe_brute_force(&q, &tid).unwrap();
            assert_eq!(compiled.probability_exact(&tid), brute, "t={t:#x}");
            compiled_count += 1;
        }
        assert_eq!(compiled_count, 70, "C(8,4) zero-Euler functions at k=2");
    }

    #[test]
    fn circuit_grows_polynomially_with_domain() {
        let sizes: Vec<usize> = [1u32, 2, 4]
            .iter()
            .map(|&n| {
                let db = complete_database(3, n);
                compile_dd(&phi9(), &db).unwrap().stats().gates
            })
            .collect();
        // Tuple count grows 4x per doubling (S relations dominate); the
        // circuit should track that, not blow up exponentially.
        assert!(sizes[1] < sizes[0] * 8, "{sizes:?}");
        assert!(sizes[2] < sizes[1] * 8, "{sizes:?}");
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn patched_dd_is_bit_identical_to_fresh_compile() {
        // Insert and remove each tuple of a φ9 instance in turn; the
        // template-re-plugged circuit must match a fresh compile on
        // every world and every probability walk, to the bit.
        let full = complete_database(3, 1);
        for (id, missing) in full.iter() {
            let mut without = Database::new(3, 1);
            for (_, desc) in full.iter() {
                if desc != missing {
                    without.insert(desc).unwrap();
                }
            }
            // Insert direction (append at the end = fresh-build order
            // only when the missing tuple was last; otherwise the orders
            // differ and patch correctly refuses nothing — it tracks the
            // *old* database it was compiled against).
            let old = without.clone();
            let mut new = without.clone();
            new.insert(missing).unwrap();
            let compiled = compile_dd(&phi9(), &old).unwrap();
            assert!(compiled.is_patchable());
            let patched = compiled.patched(&old, &new).expect("one tuple inserted");
            let fresh = compile_dd(&phi9(), &new).unwrap();
            for world in 0..(1u64 << new.len()) {
                assert_eq!(patched.eval_world(world), fresh.eval_world(world));
            }
            let p = |v: u32| 0.1 + 0.08 * f64::from(v);
            assert_eq!(
                patched.circuit.probability_f64(patched.root, &p).to_bits(),
                fresh.circuit.probability_f64(fresh.root, &p).to_bits(),
                "bit-identical d-D walks (insert)"
            );
            verify::check_dd(&patched.circuit, patched.root).expect("still a valid d-D");

            // Remove direction, starting from the full instance.
            let mut removed = full.clone();
            removed.remove(id).unwrap();
            let compiled = compile_dd(&phi9(), &full).unwrap();
            let patched = compiled
                .patched(&full, &removed)
                .expect("one tuple removed");
            let fresh = compile_dd(&phi9(), &removed).unwrap();
            let pexact = patched.circuit.probability_f64(patched.root, &p);
            assert_eq!(
                pexact.to_bits(),
                fresh.circuit.probability_f64(fresh.root, &p).to_bits(),
                "bit-identical d-D walks (remove)"
            );
            assert!(patched.is_patchable(), "patches stay patchable");
        }
    }

    #[test]
    fn compiled_lineage_reuse_probability_updates() {
        // The knowledge-compilation motivation: update tuple
        // probabilities and re-evaluate without recompiling.
        let mut rng = StdRng::seed_from_u64(99);
        let db = random_database(
            &DbGenConfig {
                k: 3,
                domain_size: 2,
                density: 0.8,
                prob_denominator: 9,
            },
            &mut rng,
        );
        let mut tid = random_tid(db, 9, &mut rng);
        let compiled = compile_dd(&phi9(), tid.database()).unwrap();
        let before = compiled.probability_exact(&tid);
        tid.set_prob(TupleId(0), BigRational::from_ratio(1, 97))
            .unwrap();
        let after = compiled.probability_exact(&tid);
        let q = HQuery::new(phi9());
        assert_eq!(after, pqe_brute_force(&q, &tid).unwrap());
        assert_ne!(before, after, "the update must be visible");
    }
}
