//! "Using fewer negations" (Section 7 of the paper).
//!
//! The paper observes that `φ ∼▷⁻* ⊥` — reachable from `φ` by *removals
//! alone* — holds iff the subgraph of `G_V[φ]` induced by the satisfying
//! valuations has a perfect matching, and that in this case `Q_φ` is in
//! `d-DNNF(PTIME)`: the template needs no `¬` gates at all (this was the
//! approach of Monet–Olteanu \[26\]). Conjecture 1 states that monotone
//! functions with `e(φ) = 0` always admit a matching on one of the two
//! sides; `φ_no-PM` (Figure 5) shows general functions may admit neither,
//! which is why the two-sided transformation of Section 5 is needed.
//!
//! This module makes the matching-based route executable: extract a
//! perfect matching, turn it into a removal-only step sequence, and build
//! the corresponding negation-free fragmentation.

use intext_boolfn::BoolFn;
use intext_matching::{hopcroft_karp, induced_subgraph_labeled};

use crate::template::Fragmentation;
use crate::transform::{invert_steps, Step, StepKind};

/// A removal-only sequence `φ ∼▷⁻* ⊥`, if one exists — i.e. iff the
/// satisfying valuations admit a perfect matching in `G_V`.
///
/// The matched pairs are pairwise disjoint, so removing them in any
/// order satisfies the step preconditions.
pub fn removal_only_steps(phi: &BoolFn) -> Option<Vec<Step>> {
    let sat = phi.sat_vec();
    let n = phi.num_vars();
    let (g, left_labels, right_labels) = induced_subgraph_labeled(n, &sat);
    if left_labels.len() != right_labels.len() {
        return None;
    }
    let matching = hopcroft_karp(&g);
    if matching.size != left_labels.len() {
        return None;
    }
    let mut steps = Vec::with_capacity(left_labels.len());
    for (u_idx, v_idx) in matching.pair_left.iter().enumerate() {
        let v_idx = v_idx.expect("perfect matching saturates the left side");
        let (a, b) = (left_labels[u_idx], right_labels[v_idx as usize]);
        debug_assert_eq!((a ^ b).count_ones(), 1, "matched nodes are adjacent");
        steps.push(Step {
            kind: StepKind::Remove,
            nu: a,
            var: (a ^ b).trailing_zeros() as u8,
        });
    }
    Some(steps)
}

/// A negation-free fragmentation (pure `∨`-template over degenerate
/// pairs), if the colored side of `G_V[φ]` has a perfect matching. The
/// resulting compiled lineage is a d-DNNF — negations occur only on
/// input variables inside the leaf OBDD gadgets.
pub fn negation_free_fragmentation(phi: &BoolFn) -> Option<Fragmentation> {
    let removals = removal_only_steps(phi)?;
    let build_up = invert_steps(&removals);
    let frag = Fragmentation::from_steps(phi.num_vars(), &build_up);
    debug_assert_eq!(frag.template.negation_count(), 0);
    Some(frag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::apply_steps;
    use intext_boolfn::{enumerate, phi9, phi_no_pm, small};

    #[test]
    fn phi9_admits_a_removal_only_sequence() {
        let steps = removal_only_steps(&phi9()).expect("phi9's colored side matches");
        assert!(steps.iter().all(|s| s.kind == StepKind::Remove));
        assert_eq!(steps.len(), 4, "8 satisfying valuations in 4 pairs");
        let end = apply_steps(&phi9(), &steps).unwrap();
        assert!(end.is_bottom());
    }

    #[test]
    fn phi9_negation_free_fragmentation() {
        let frag = negation_free_fragmentation(&phi9()).unwrap();
        assert_eq!(frag.template.negation_count(), 0);
        assert!(frag.is_deterministic());
        assert_eq!(frag.to_boolfn(), phi9());
    }

    #[test]
    fn phi_no_pm_has_no_removal_only_route() {
        // Figure 5's whole point.
        assert!(removal_only_steps(&phi_no_pm()).is_none());
        assert!(negation_free_fragmentation(&phi_no_pm()).is_none());
    }

    #[test]
    fn conjectured_route_works_for_all_safe_monotone_k3() {
        // By Conjecture 1 (verified exhaustively for k <= 5), every safe
        // monotone function has a matching on the colored or uncolored
        // side; when it is the colored side, the negation-free route must
        // succeed and round-trip.
        for t in enumerate::monotone_tables(4) {
            if small::euler(4, t) != 0 {
                continue;
            }
            let phi = BoolFn::from_table_u64(4, t);
            if let Some(frag) = negation_free_fragmentation(&phi) {
                assert_eq!(frag.to_boolfn(), phi, "t={t:#x}");
                assert!(frag.is_deterministic(), "t={t:#x}");
            } else {
                // Then the uncolored side must match (Conjecture 1).
                assert!(
                    removal_only_steps(&!&phi).is_some(),
                    "Conjecture 1 violated at t={t:#x}"
                );
            }
        }
    }

    #[test]
    fn odd_sat_count_cannot_be_removal_only() {
        let phi = BoolFn::from_sat(3, [0b000u32, 0b001, 0b011]);
        assert!(removal_only_steps(&phi).is_none());
    }
}
