//! The valuation transformation `∼▷±` (Section 5 of the paper).
//!
//! A [`Step`] adds or removes a pair of *adjacent* valuations (differing
//! in exactly one variable) to/from the satisfying set; [`Step::apply`]
//! machine-checks the preconditions of Definition 5.5, so every sequence
//! produced here is verifiable. On top of the elementary steps:
//!
//! * [`fetch_path`] — the fetching lemma (5.11): a path between two
//!   opposite-parity satisfying valuations with non-satisfying interior;
//! * chainkilling / chainswapping (Lemma 5.10) as step generators;
//! * [`steps_to_bottom`] — Proposition 5.9 (`e(φ)=0 ⟹ φ ≃ ⊥`);
//! * [`steps_to_even_only`] — Lemma 6.5;
//! * [`steps_to_canonical`] — Lemma 6.7, via *hole routing*: in an
//!   even-only function the whole odd layer of the hypercube is free, so
//!   moving one satisfying valuation anywhere reduces to cascaded
//!   chainswaps along an arbitrary hypercube path (only the endpoints'
//!   membership changes; see DESIGN.md for why this replaces the paper's
//!   case analysis soundly);
//! * [`steps_between`] — Proposition 6.1 (`e(φ)=e(φ′) ⟺ φ ≃ φ′`),
//!   by canonicalizing both sides (dualized through complements when the
//!   Euler characteristic is negative).

use std::fmt;

use intext_boolfn::{BoolFn, Valuation};

/// Direction of an elementary transformation step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// `∼▷⁺`: color two adjacent non-satisfying valuations.
    Add,
    /// `∼▷⁻`: uncolor two adjacent satisfying valuations.
    Remove,
}

/// One elementary step `∼▷±(ν, l)` of Definition 5.5, acting on the pair
/// `{ν, ν^(l)}`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Step {
    /// Add or remove.
    pub kind: StepKind,
    /// The valuation `ν`.
    pub nu: u32,
    /// The flipped variable `l`.
    pub var: u8,
}

/// Violations of the step preconditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepError {
    /// An `Add` step on a valuation already satisfying, or a `Remove`
    /// step on a non-satisfying one.
    Precondition(Step),
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Precondition(s) => write!(
                f,
                "step {:?}({}, {}) violates Definition 5.5 preconditions",
                s.kind,
                Valuation(s.nu),
                s.var
            ),
        }
    }
}

impl std::error::Error for StepError {}

impl Step {
    /// The partner valuation `ν^(l)`.
    pub fn partner(&self) -> u32 {
        self.nu ^ (1u32 << self.var)
    }

    /// Applies the step to `phi`, checking Definition 5.5: both
    /// valuations must be non-satisfying for `Add` / satisfying for
    /// `Remove`.
    pub fn apply(&self, phi: &BoolFn) -> Result<BoolFn, StepError> {
        let (a, b) = (self.nu, self.partner());
        let want = match self.kind {
            StepKind::Add => false,
            StepKind::Remove => true,
        };
        if phi.eval(a) != want || phi.eval(b) != want {
            return Err(StepError::Precondition(*self));
        }
        let mut out = phi.clone();
        out.set(a, !want);
        out.set(b, !want);
        Ok(out)
    }

    /// The inverse step (swaps `Add` and `Remove`).
    pub fn inverse(&self) -> Step {
        Step {
            kind: match self.kind {
                StepKind::Add => StepKind::Remove,
                StepKind::Remove => StepKind::Add,
            },
            ..*self
        }
    }

    /// The step acting on the complement function (`Add` on `φ` is
    /// `Remove` on `¬φ`), used to dualize sequences.
    pub fn complemented(&self) -> Step {
        self.inverse()
    }
}

/// Applies a sequence of steps, validating each one.
pub fn apply_steps(phi: &BoolFn, steps: &[Step]) -> Result<BoolFn, StepError> {
    let mut cur = phi.clone();
    for s in steps {
        cur = s.apply(&cur)?;
    }
    Ok(cur)
}

/// The inverse sequence: reversed order, each step inverted.
pub fn invert_steps(steps: &[Step]) -> Vec<Step> {
    steps.iter().rev().map(Step::inverse).collect()
}

/// Errors from the transformation algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransformError {
    /// `steps_to_bottom` requires `e(φ) = 0`.
    NonZeroEuler(i64),
    /// `steps_between` requires `e(φ) = e(φ′)`.
    EulerMismatch(i64, i64),
    /// Arities differ.
    ArityMismatch(u8, u8),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NonZeroEuler(e) => {
                write!(f, "transformation to ⊥ requires e(φ) = 0, got {e}")
            }
            TransformError::EulerMismatch(a, b) => {
                write!(
                    f,
                    "e(φ) = {a} ≠ {b} = e(φ′): functions are not ≃-equivalent"
                )
            }
            TransformError::ArityMismatch(a, b) => {
                write!(f, "variable counts differ: {a} vs {b}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// A canonical simple path in the hypercube from `from` to `to`: flip the
/// differing bits in increasing order.
pub fn hypercube_path(from: u32, to: u32) -> Vec<u32> {
    let mut path = vec![from];
    let mut cur = from;
    let mut diff = from ^ to;
    while diff != 0 {
        let bit = diff & diff.wrapping_neg();
        cur ^= bit;
        path.push(cur);
        diff &= !bit;
    }
    path
}

/// The variable flipped between two adjacent valuations.
fn flipped_var(a: u32, b: u32) -> u8 {
    debug_assert_eq!((a ^ b).count_ones(), 1, "valuations must be adjacent");
    (a ^ b).trailing_zeros() as u8
}

/// Chainkill (Lemma 5.10): the path's endpoints are satisfying with
/// opposite parity, the interior is non-satisfying; emits steps that
/// uncolor both endpoints (coloring and uncoloring the interior on the
/// way). Mutates `phi` and appends the validated steps.
fn chainkill(phi: &mut BoolFn, path: &[u32], steps: &mut Vec<Step>) {
    let m = path.len() - 1;
    debug_assert!(
        m % 2 == 1,
        "chainkill path must have opposite-parity endpoints"
    );
    let emit = |phi: &mut BoolFn, kind: StepKind, a: u32, b: u32, steps: &mut Vec<Step>| {
        let s = Step {
            kind,
            nu: a,
            var: flipped_var(a, b),
        };
        *phi = s.apply(phi).expect("chainkill step precondition");
        steps.push(s);
    };
    // Color the interior in adjacent pairs (1,2), (3,4), ..., (m-2,m-1)...
    let mut j = 1;
    while j + 2 <= m {
        emit(phi, StepKind::Add, path[j], path[j + 1], steps);
        j += 2;
    }
    // ... then uncolor everything in shifted pairs (0,1), ..., (m-1,m).
    let mut j = 0;
    while j < m {
        emit(phi, StepKind::Remove, path[j], path[j + 1], steps);
        j += 2;
    }
}

/// Chainswap (Lemma 5.10): the last node of the path is satisfying, all
/// others (including the first) are not, and the endpoints have equal
/// parity; emits steps that move the satisfying valuation from the end
/// of the path to its start.
fn chainswap(phi: &mut BoolFn, path: &[u32], steps: &mut Vec<Step>) {
    let m = path.len() - 1;
    debug_assert!(
        m.is_multiple_of(2),
        "chainswap path must have equal-parity endpoints"
    );
    debug_assert!(m >= 2, "chainswap needs at least one intermediate node");
    let emit = |phi: &mut BoolFn, kind: StepKind, a: u32, b: u32, steps: &mut Vec<Step>| {
        let s = Step {
            kind,
            nu: a,
            var: flipped_var(a, b),
        };
        *phi = s.apply(phi).expect("chainswap step precondition");
        steps.push(s);
    };
    // Color (q0,q1), (q2,q3), ..., (q_{m-2}, q_{m-1}) ...
    let mut j = 0;
    while j < m - 1 {
        emit(phi, StepKind::Add, path[j], path[j + 1], steps);
        j += 2;
    }
    // ... then uncolor (q1,q2), (q3,q4), ..., (q_{m-1}, q_m).
    let mut j = 1;
    while j < m {
        emit(phi, StepKind::Remove, path[j], path[j + 1], steps);
        j += 2;
    }
}

/// The fetching lemma (5.11): whenever `#φ ≠ |e(φ)|`, returns a simple
/// path whose endpoints are satisfying valuations of opposite parity and
/// whose interior is non-satisfying.
pub fn fetch_path(phi: &BoolFn) -> Option<Vec<u32>> {
    // Two satisfying valuations of opposite parity must exist.
    let even = phi.sat_iter().find(|v| v.count_ones() % 2 == 0)?;
    let odd = phi.sat_iter().find(|v| v.count_ones() % 2 == 1)?;
    let path = hypercube_path(even, odd);
    let m = path.len() - 1;
    let parity = |v: u32| v.count_ones() % 2;
    // i: last index < m with the start's parity that satisfies phi.
    let i = (0..m)
        .rev()
        .find(|&j| parity(path[j]) == parity(path[0]) && phi.eval(path[j]))
        .expect("index 0 qualifies");
    // i': first index > i with the end's parity that satisfies phi.
    let ip = (i + 1..=m)
        .find(|&j| parity(path[j]) == parity(path[m]) && phi.eval(path[j]))
        .expect("index m qualifies");
    Some(path[i..=ip].to_vec())
}

/// Proposition 5.9: for `e(φ) = 0`, a validated step sequence
/// transforming `φ` into `⊥`.
pub fn steps_to_bottom(phi: &BoolFn) -> Result<Vec<Step>, TransformError> {
    let e = phi.euler_characteristic();
    if e != 0 {
        return Err(TransformError::NonZeroEuler(e));
    }
    let mut cur = phi.clone();
    let mut steps = Vec::new();
    while cur.sat_count() > 0 {
        let path = fetch_path(&cur).expect("e = 0 and #φ > 0 imply both parities present");
        chainkill(&mut cur, &path, &mut steps);
    }
    debug_assert!(cur.is_bottom());
    Ok(steps)
}

/// Lemma 6.5: for `e(φ) >= 0`, steps to an equivalent function whose
/// satisfying valuations all have even size. Returns the steps and the
/// resulting function (whose satisfying count is exactly `e(φ)`).
pub fn steps_to_even_only(phi: &BoolFn) -> Result<(Vec<Step>, BoolFn), TransformError> {
    let e = phi.euler_characteristic();
    if e < 0 {
        return Err(TransformError::NonZeroEuler(e));
    }
    let mut cur = phi.clone();
    let mut steps = Vec::new();
    while cur.sat_iter().any(|v| v.count_ones() % 2 == 1) {
        let path = fetch_path(&cur).expect("odd satisfying valuations imply #φ > |e|");
        chainkill(&mut cur, &path, &mut steps);
    }
    debug_assert_eq!(cur.sat_count() as i64, e);
    Ok((steps, cur))
}

/// The canonical function with Euler characteristic `e >= 0` on `n`
/// variables: the first `e` even-size valuations in (size, value) order.
/// This is in canonical form per Definition 6.6.
pub fn canonical_function(n: u8, e: i64) -> BoolFn {
    assert!(e >= 0, "canonical_function is defined for e >= 0");
    let mut evens: Vec<u32> = (0..(1u32 << n))
        .filter(|v| v.count_ones() % 2 == 0)
        .collect();
    evens.sort_by_key(|&v| (v.count_ones(), v));
    assert!(
        (e as usize) <= evens.len(),
        "e = {e} exceeds the number of even valuations"
    );
    BoolFn::from_sat(n, evens.into_iter().take(e as usize))
}

/// Definition 6.6: only even-size satisfying valuations, and no
/// "bad pair" (a satisfying valuation strictly larger than some
/// non-satisfying even valuation).
pub fn is_canonical(phi: &BoolFn) -> bool {
    if phi.sat_iter().any(|v| v.count_ones() % 2 == 1) {
        return false;
    }
    let max_sat = phi.sat_iter().map(|v| v.count_ones()).max().unwrap_or(0);
    // Every even valuation strictly smaller than the largest satisfying
    // one must itself satisfy.
    (0..(1u32 << phi.num_vars()))
        .filter(|v| v.count_ones() % 2 == 0 && v.count_ones() < max_sat)
        .all(|v| phi.eval(v))
}

/// Moves one satisfying valuation from `from` to the non-satisfying
/// `to` (both of even size, in an even-only function), by cascaded
/// chainswaps along a hypercube path. Only the two endpoints change
/// membership; the odd layer is used as free routing space.
fn route_token(phi: &mut BoolFn, from: u32, to: u32, steps: &mut Vec<Step>) {
    debug_assert!(phi.eval(from) && !phi.eval(to));
    let path = hypercube_path(to, from);
    let mut hole = 0usize; // index of the current hole on the path
    while hole < path.len() - 1 {
        // Next satisfying node along the path (even indices only; odd
        // path positions have odd parity and are free by the invariant).
        let j = (hole + 1..path.len())
            .find(|&j| phi.eval(path[j]))
            .expect("the far endpoint satisfies");
        chainswap(phi, &path[hole..=j], steps);
        hole = j;
    }
}

/// Lemma 6.7 (constructive): steps transforming an even-only function
/// into the canonical function with the same Euler characteristic.
fn even_only_to_canonical(phi: &BoolFn, steps: &mut Vec<Step>) -> BoolFn {
    let target = canonical_function(phi.num_vars(), phi.sat_count() as i64);
    let mut cur = phi.clone();
    loop {
        let from = cur.sat_iter().find(|&v| !target.eval(v));
        let to = target.sat_iter().find(|&v| !cur.eval(v));
        match (from, to) {
            (Some(f), Some(t)) => route_token(&mut cur, f, t, steps),
            (None, None) => break,
            _ => unreachable!("equal satisfying counts"),
        }
    }
    debug_assert_eq!(cur, target);
    cur
}

/// Steps from `φ` to the canonical form of its ≃-class (Lemmas 6.5 + 6.7;
/// requires `e(φ) >= 0` — for negative values the callers dualize).
pub fn steps_to_canonical(phi: &BoolFn) -> Result<(Vec<Step>, BoolFn), TransformError> {
    let (mut steps, even_only) = steps_to_even_only(phi)?;
    let canonical = even_only_to_canonical(&even_only, &mut steps);
    Ok((steps, canonical))
}

/// Proposition 6.1 (constructive direction): a validated step sequence
/// from `φ` to `φ′` whenever `e(φ) = e(φ′)`.
pub fn steps_between(phi: &BoolFn, phi2: &BoolFn) -> Result<Vec<Step>, TransformError> {
    if phi.num_vars() != phi2.num_vars() {
        return Err(TransformError::ArityMismatch(
            phi.num_vars(),
            phi2.num_vars(),
        ));
    }
    let (e1, e2) = (phi.euler_characteristic(), phi2.euler_characteristic());
    if e1 != e2 {
        return Err(TransformError::EulerMismatch(e1, e2));
    }
    if e1 < 0 {
        // Dualize: steps on the complements with Add/Remove swapped.
        let steps = steps_between(&!phi, &!phi2)?;
        return Ok(steps.iter().map(Step::complemented).collect());
    }
    let (forward, c1) = steps_to_canonical(phi)?;
    let (backward, c2) = steps_to_canonical(phi2)?;
    debug_assert_eq!(
        c1, c2,
        "canonical forms coincide for equal Euler characteristic"
    );
    let mut steps = forward;
    steps.extend(invert_steps(&backward));
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{max_euler_fn, phi9, phi_no_pm, small};

    #[test]
    fn step_apply_and_inverse() {
        let bot = BoolFn::bottom(3);
        let s = Step {
            kind: StepKind::Add,
            nu: 0b000,
            var: 2,
        };
        let phi = s.apply(&bot).unwrap();
        assert_eq!(phi.sat_vec(), vec![0b000, 0b100]);
        let back = s.inverse().apply(&phi).unwrap();
        assert!(back.is_bottom());
    }

    #[test]
    fn step_preconditions_enforced() {
        let bot = BoolFn::bottom(3);
        let bad = Step {
            kind: StepKind::Remove,
            nu: 0,
            var: 0,
        };
        assert!(matches!(bad.apply(&bot), Err(StepError::Precondition(_))));
        let top = BoolFn::top(3);
        let bad2 = Step {
            kind: StepKind::Add,
            nu: 0,
            var: 0,
        };
        assert!(bad2.apply(&top).is_err());
        // Half-colored pair is invalid in both directions.
        let half = BoolFn::from_sat(3, [0u32]);
        assert!(Step {
            kind: StepKind::Add,
            nu: 0,
            var: 1
        }
        .apply(&half)
        .is_err());
        assert!(Step {
            kind: StepKind::Remove,
            nu: 0,
            var: 1
        }
        .apply(&half)
        .is_err());
    }

    #[test]
    fn steps_never_change_euler() {
        let phi = phi9();
        let steps = steps_to_bottom(&phi).unwrap();
        let mut cur = phi.clone();
        for s in &steps {
            cur = s.apply(&cur).unwrap();
            assert_eq!(cur.euler_characteristic(), 0, "after {s:?}");
        }
        assert!(cur.is_bottom());
    }

    #[test]
    fn hypercube_path_is_simple_and_adjacent() {
        let p = hypercube_path(0b0011, 0b1100);
        assert_eq!(p.first(), Some(&0b0011));
        assert_eq!(p.last(), Some(&0b1100));
        for w in p.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
        }
        let set: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(set.len(), p.len(), "path is simple");
    }

    #[test]
    fn fetch_path_contract() {
        let phi = phi9();
        let path = fetch_path(&phi).expect("phi9 has both parities");
        let first = *path.first().unwrap();
        let last = *path.last().unwrap();
        assert!(phi.eval(first) && phi.eval(last));
        assert_ne!(first.count_ones() % 2, last.count_ones() % 2);
        for &v in &path[1..path.len() - 1] {
            assert!(!phi.eval(v), "interior must be non-satisfying");
        }
    }

    #[test]
    fn phi9_reaches_bottom() {
        let steps = steps_to_bottom(&phi9()).unwrap();
        let end = apply_steps(&phi9(), &steps).unwrap();
        assert!(end.is_bottom());
        // And the reverse builds phi9 from ⊥.
        let back = apply_steps(&BoolFn::bottom(4), &invert_steps(&steps)).unwrap();
        assert_eq!(back, phi9());
    }

    #[test]
    fn phi_no_pm_reaches_bottom_despite_no_matching() {
        // Figure 5's function: e = 0 but no one-sided matching — the
        // two-sided transformation still reaches ⊥ (the whole point of
        // Definition 5.5 having both directions).
        let phi = phi_no_pm();
        let steps = steps_to_bottom(&phi).unwrap();
        assert!(apply_steps(&phi, &steps).unwrap().is_bottom());
        // A pure-removal sequence is impossible (no perfect matching on
        // the colored side), so Add steps must appear.
        assert!(
            steps.iter().any(|s| s.kind == StepKind::Add),
            "φ_no-PM requires additions"
        );
    }

    #[test]
    fn nonzero_euler_rejected_by_to_bottom() {
        let f = max_euler_fn(3);
        assert_eq!(
            steps_to_bottom(&f).unwrap_err(),
            TransformError::NonZeroEuler(4)
        );
    }

    #[test]
    fn to_bottom_exhaustive_k2() {
        // Every function on 3 variables with e = 0 reaches ⊥.
        for t in 0..256u64 {
            if small::euler(3, t) != 0 {
                continue;
            }
            let phi = BoolFn::from_table_u64(3, t);
            let steps = steps_to_bottom(&phi).unwrap();
            assert!(apply_steps(&phi, &steps).unwrap().is_bottom(), "t={t:#x}");
        }
    }

    #[test]
    fn even_only_form() {
        let phi = max_euler_fn(3); // already even-only
        let (steps, out) = steps_to_even_only(&phi).unwrap();
        assert!(steps.is_empty());
        assert_eq!(out, phi);
        // A mixed function gets reduced.
        let mixed = BoolFn::from_sat(3, [0b000u32, 0b001, 0b011, 0b010, 0b101, 0b110]);
        let e = mixed.euler_characteristic();
        assert!(e >= 0);
        let (steps, out) = steps_to_even_only(&mixed).unwrap();
        assert_eq!(apply_steps(&mixed, &steps).unwrap(), out);
        assert!(out.sat_iter().all(|v| v.count_ones() % 2 == 0));
        assert_eq!(out.sat_count() as i64, e);
    }

    #[test]
    fn canonical_function_shape() {
        let c = canonical_function(3, 3);
        // First three evens in (size, value) order: {}, {0,1}, {0,2}.
        assert_eq!(c.sat_vec(), vec![0b000, 0b011, 0b101]);
        assert!(is_canonical(&c));
        assert!(!is_canonical(&BoolFn::from_sat(3, [0b011u32]))); // hole at ∅
        assert!(!is_canonical(&BoolFn::from_sat(3, [0b001u32]))); // odd size
        assert!(is_canonical(&BoolFn::bottom(3)));
    }

    #[test]
    fn canonicalization_exhaustive_k2_nonnegative() {
        for t in 0..256u64 {
            if small::euler(3, t) < 0 {
                continue;
            }
            let phi = BoolFn::from_table_u64(3, t);
            let (steps, canon) = steps_to_canonical(&phi).unwrap();
            assert_eq!(apply_steps(&phi, &steps).unwrap(), canon, "t={t:#x}");
            assert!(is_canonical(&canon), "t={t:#x}");
            assert_eq!(
                canon,
                canonical_function(3, phi.euler_characteristic()),
                "t={t:#x}"
            );
        }
    }

    #[test]
    fn steps_between_exhaustive_k1() {
        // All pairs of functions on 2 variables.
        for t1 in 0..16u64 {
            for t2 in 0..16u64 {
                let f = BoolFn::from_table_u64(2, t1);
                let g = BoolFn::from_table_u64(2, t2);
                let result = steps_between(&f, &g);
                if f.euler_characteristic() == g.euler_characteristic() {
                    let steps = result.unwrap();
                    assert_eq!(apply_steps(&f, &steps).unwrap(), g, "{t1:#x}->{t2:#x}");
                } else {
                    assert!(matches!(result, Err(TransformError::EulerMismatch(_, _))));
                }
            }
        }
    }

    #[test]
    fn steps_between_negative_euler_via_duality() {
        // Two functions with e = -2 on 3 variables.
        let f = BoolFn::from_sat(3, [0b001u32, 0b010]);
        let g = BoolFn::from_sat(3, [0b100u32, 0b111, 0b001, 0b011]);
        assert_eq!(f.euler_characteristic(), -2);
        assert_eq!(g.euler_characteristic(), -2);
        let steps = steps_between(&f, &g).unwrap();
        assert_eq!(apply_steps(&f, &steps).unwrap(), g);
    }

    #[test]
    fn steps_between_phi9_and_bottom_and_top_class() {
        let steps = steps_between(&phi9(), &BoolFn::bottom(4)).unwrap();
        assert!(apply_steps(&phi9(), &steps).unwrap().is_bottom());
        // ⊤ also has e = 0 — same class.
        let steps = steps_between(&phi9(), &BoolFn::top(4)).unwrap();
        assert!(apply_steps(&phi9(), &steps).unwrap().is_top());
    }

    #[test]
    fn arity_mismatch_detected() {
        assert_eq!(
            steps_between(&BoolFn::bottom(3), &BoolFn::bottom(4)).unwrap_err(),
            TransformError::ArityMismatch(3, 4)
        );
    }
}
