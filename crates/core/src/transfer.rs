//! Theorem 6.2: queries with equal Euler characteristic are equivalent
//! for PQE (item a) and for d-D compilability (items b, c).
//!
//! The constructive content: given a step sequence `φ → φ′`, each step's
//! pair-function `ψ_i` is degenerate, hence PTIME-compilable
//! (Proposition 3.7); an `Add` step turns a lineage d-D `C` into
//! `C ∨ C_{ψ}` (deterministic) and a `Remove` step into `¬(¬C ∨ C_{ψ})`.
//! At the probability level the same steps give
//! `Pr(Q_{φ_i}) = Pr(Q_{φ_{i-1}}) ± Pr(Q_{ψ_i})`, which is the PTIME
//! Turing reduction of item (a) — and the engine behind Proposition 6.4's
//! hardness transfer to non-monotone queries.

use intext_boolfn::BoolFn;
use intext_circuits::{Circuit, GateId};
use intext_lineage::compile_degenerate_obdd;
use intext_numeric::BigRational;
use intext_tid::{Database, Tid};

use crate::pipeline::CompileError;
use crate::transform::{steps_between, Step, StepKind, TransformError};

/// Extends a lineage circuit for `Q_φ` into one for `Q_φ′` by replaying
/// a `φ → φ′` step sequence (Theorem 6.2 (b)).
///
/// `root` must capture `Lin(Q_φ, D)` inside `circuit`; the return value
/// is the root of `Lin(Q_φ′, D)` in the same arena. Determinism of the
/// introduced `∨` gates holds because lineage is a homomorphism and the
/// step preconditions make the combined functions disjoint over `V`.
pub fn transfer_circuit(
    circuit: &mut Circuit,
    root: GateId,
    n: u8,
    steps: &[Step],
    db: &Database,
) -> Result<GateId, CompileError> {
    let mut cur = root;
    for step in steps {
        let pair = BoolFn::from_sat(n, [step.nu, step.partner()]);
        let lin = compile_degenerate_obdd(&pair, db)?;
        let pair_gate = lin.manager.copy_into_circuit(lin.root, circuit);
        cur = match step.kind {
            StepKind::Add => circuit.or(vec![cur, pair_gate]),
            StepKind::Remove => {
                let neg = circuit.not(cur);
                let or = circuit.or(vec![neg, pair_gate]);
                circuit.not(or)
            }
        };
    }
    Ok(cur)
}

/// Theorem 6.2 (a), constructively: computes `Pr(Q_φ′)` from a given
/// `Pr(Q_φ)` using one PTIME-computable correction per step — the
/// Turing reduction `PQE(Q_φ′) ≤_T PQE(Q_φ)` in executable form.
pub fn pqe_via_transfer(
    source_prob: &BigRational,
    n: u8,
    steps: &[Step],
    tid: &Tid,
) -> Result<BigRational, CompileError> {
    let mut acc = source_prob.clone();
    for step in steps {
        let pair = BoolFn::from_sat(n, [step.nu, step.partner()]);
        let lin = compile_degenerate_obdd(&pair, tid.database())?;
        let p = lin.probability_exact(tid);
        acc = match step.kind {
            StepKind::Add => &acc + &p,
            StepKind::Remove => &acc - &p,
        };
    }
    Ok(acc)
}

/// Convenience: full Theorem 6.2 (a) reduction between two functions of
/// equal Euler characteristic, given an oracle value for the source.
pub fn pqe_between(
    phi_source: &BoolFn,
    phi_target: &BoolFn,
    source_prob: &BigRational,
    tid: &Tid,
) -> Result<BigRational, TransferError> {
    let steps = steps_between(phi_source, phi_target).map_err(TransferError::Transform)?;
    pqe_via_transfer(source_prob, phi_source.num_vars(), &steps, tid)
        .map_err(TransferError::Compile)
}

/// Errors from the full transfer reduction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferError {
    /// The two functions are not ≃-equivalent.
    Transform(TransformError),
    /// A degenerate pair failed to compile.
    Compile(CompileError),
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Transform(e) => write!(f, "{e}"),
            TransferError::Compile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TransferError {}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;
    use intext_circuits::verify;
    use intext_query::{pqe_brute_force, HQuery};
    use intext_tid::{random_database, random_tid, DbGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_tid(k: u8, seed: u64) -> Tid {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = random_database(
            &DbGenConfig {
                k,
                domain_size: 2,
                density: 0.7,
                prob_denominator: 6,
            },
            &mut rng,
        );
        random_tid(db, 6, &mut rng)
    }

    #[test]
    fn circuit_transfer_from_bottom_equals_direct_compilation_semantics() {
        // Transfer ⊥ → phi9 and check lineage semantics world by world.
        let tid = sample_tid(3, 1);
        let db = tid.database();
        let steps = steps_between(&BoolFn::bottom(4), &phi9()).unwrap();
        let mut circuit = Circuit::new();
        let bot = circuit.constant(false);
        let root = transfer_circuit(&mut circuit, bot, 4, &steps, db).unwrap();
        let q = HQuery::new(phi9());
        if db.len() < 20 {
            for world in 0..(1u64 << db.len()) {
                assert_eq!(
                    circuit.eval(root, &|v| (world >> v) & 1 == 1),
                    q.lineage_eval(db, world),
                    "world {world:#b}"
                );
            }
        }
        let expect = pqe_brute_force(&q, &tid).unwrap();
        let got = circuit.probability_exact(root, &|v| tid.prob(intext_tid::TupleId(v)).clone());
        assert_eq!(got, expect);
    }

    #[test]
    fn transferred_circuit_is_a_dd() {
        let tid = sample_tid(2, 2);
        let db = tid.database();
        if db.len() > 14 {
            return; // keep the exhaustive determinism check cheap
        }
        let zero_target = BoolFn::from_sat(3, [0b011u32, 0b111, 0b101, 0b001]);
        assert_eq!(zero_target.euler_characteristic(), 0);
        let steps = steps_between(&BoolFn::bottom(3), &zero_target).unwrap();
        let mut circuit = Circuit::new();
        let bot = circuit.constant(false);
        let root = transfer_circuit(&mut circuit, bot, 3, &steps, db).unwrap();
        verify::check_dd(&circuit, root).expect("transferred circuit is a d-D");
    }

    #[test]
    fn pqe_reduction_between_equal_euler_queries() {
        // Pr(Q_target) reconstructed from Pr(Q_source) + corrections,
        // for a *hard* pair (e = 2): brute force plays the oracle.
        let tid = sample_tid(2, 3);
        let source = BoolFn::from_sat(3, [0b000u32, 0b011]); // e = 2
        let target = BoolFn::from_sat(3, [0b101u32, 0b110]); // e = 2
        assert_eq!(source.euler_characteristic(), 2);
        assert_eq!(target.euler_characteristic(), 2);
        let source_prob = pqe_brute_force(&HQuery::new(source.clone()), &tid).unwrap();
        let via_transfer = pqe_between(&source, &target, &source_prob, &tid).unwrap();
        let direct = pqe_brute_force(&HQuery::new(target), &tid).unwrap();
        assert_eq!(via_transfer, direct);
    }

    #[test]
    fn mismatched_euler_rejected() {
        let tid = sample_tid(2, 4);
        let a = BoolFn::bottom(3);
        let b = intext_boolfn::max_euler_fn(3);
        let err = pqe_between(&a, &b, &BigRational::zero(), &tid).unwrap_err();
        assert!(matches!(
            err,
            TransferError::Transform(TransformError::EulerMismatch(_, _))
        ));
    }
}
