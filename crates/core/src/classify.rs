//! The region map of Figure 1: where every `H`-query lives.

use intext_boolfn::{monotone_euler_range, BoolFn};

/// The regions of the paper's Figure 1, as decided by this library.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Region {
    /// Blue rectangle: `φ` degenerate — `Q_φ ∈ OBDD(PTIME)`
    /// (Proposition 3.7; lower bound from Beame et al. \[6\]).
    DegenerateObdd,
    /// Dashed green: `e(φ) = 0` and nondegenerate — `Q_φ ∈ d-D(PTIME)`
    /// by the paper's technique (Theorem 5.2); includes every safe
    /// nondegenerate `H⁺`-query (Corollary 5.3).
    ZeroEulerDD,
    /// Solid red: monotone with `e(φ) ≠ 0` — `PQE(Q_φ)` is `#P`-hard by
    /// the Dalvi–Suciu dichotomy (Corollary 3.9).
    HardMonotone,
    /// Dashed red: non-monotone, `e(φ) ≠ 0`, but within the Euler range
    /// achievable by monotone functions — `#P`-hard by the transfer
    /// reduction (Proposition 6.4 / Lemma C.1).
    HardByTransfer,
    /// Dotted gray: non-monotone with `e(φ)` beyond the monotone range
    /// (e.g. `φ_max-Euler`) — conjectured `#P`-hard (Open problem 1).
    ConjecturedHard,
    /// Off the Figure 1 map: a general query that is not H-shaped but
    /// passes the Dalvi–Suciu safety test, answered in PTIME by lifted
    /// (extensional) inference.
    SafeLifted,
    /// Off the Figure 1 map: a general query that is neither H-shaped
    /// nor safe, answered exactly by grounding its lineage to a
    /// circuit — exponential in the worst case, so budgeted.
    GroundCircuit,
}

impl Region {
    /// Is there a PTIME-or-budgeted evaluation for this region (the
    /// paper's compilations, lifted inference, or a grounded circuit)?
    pub fn is_tractable(self) -> bool {
        matches!(
            self,
            Region::DegenerateObdd
                | Region::ZeroEulerDD
                | Region::SafeLifted
                | Region::GroundCircuit
        )
    }

    /// Does the paper prove `#P`-hardness for this region?
    pub fn is_proven_hard(self) -> bool {
        matches!(self, Region::HardMonotone | Region::HardByTransfer)
    }
}

/// Proposition 6.4's constructive content: for a (possibly non-monotone)
/// `φ` with `e(φ) ≠ 0` inside the monotone-achievable Euler range,
/// produces a *monotone* function with the same Euler characteristic —
/// `#P`-hard by Corollary 3.9 and `≃`-connected to `φ` by
/// Proposition 6.1, so `PQE(Q_φ)` inherits the hardness through
/// Theorem 6.2 (a).
pub fn hardness_witness(phi: &BoolFn) -> Option<BoolFn> {
    let e = phi.euler_characteristic();
    if e == 0 {
        return None; // tractable, nothing to transfer
    }
    intext_boolfn::monotone_with_euler(phi.k(), e)
}

/// Places an `H`-query's defining function in its Figure 1 region.
pub fn classify(phi: &BoolFn) -> Region {
    if phi.is_degenerate() {
        return Region::DegenerateObdd;
    }
    let e = phi.euler_characteristic();
    if e == 0 {
        return Region::ZeroEulerDD;
    }
    if phi.is_monotone() {
        return Region::HardMonotone;
    }
    let (min, max) = monotone_euler_range(phi.k());
    if (min..=max).contains(&e) {
        Region::HardByTransfer
    } else {
        Region::ConjecturedHard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{max_euler_fn, phi9, phi_no_pm, threshold_fn, BoolFn};

    #[test]
    fn canonical_examples_land_in_their_regions() {
        assert_eq!(classify(&BoolFn::var(4, 2)), Region::DegenerateObdd);
        assert_eq!(classify(&BoolFn::bottom(3)), Region::DegenerateObdd);
        assert_eq!(classify(&phi9()), Region::ZeroEulerDD);
        assert_eq!(classify(&phi_no_pm()), Region::ZeroEulerDD);
        // The hard chain query h_k: one CNF clause with everything.
        let hard = BoolFn::from_fn(4, |v| v != 0);
        assert_eq!(classify(&hard), Region::HardMonotone);
        assert_eq!(classify(&max_euler_fn(4)), Region::ConjecturedHard);
    }

    #[test]
    fn transfer_hard_example() {
        // A non-monotone function with small nonzero Euler characteristic
        // sits in the dashed red region.
        let phi = BoolFn::from_sat(3, [0b001u32, 0b010, 0b000]);
        assert!(!phi.is_monotone());
        assert_eq!(phi.euler_characteristic(), -1);
        assert_eq!(classify(&phi), Region::HardByTransfer);
    }

    #[test]
    fn region_predicates() {
        assert!(Region::DegenerateObdd.is_tractable());
        assert!(Region::ZeroEulerDD.is_tractable());
        assert!(!Region::HardMonotone.is_tractable());
        assert!(Region::HardMonotone.is_proven_hard());
        assert!(Region::HardByTransfer.is_proven_hard());
        assert!(!Region::ConjecturedHard.is_proven_hard());
        assert!(!Region::ConjecturedHard.is_tractable());
        assert!(Region::SafeLifted.is_tractable());
        assert!(Region::GroundCircuit.is_tractable());
        assert!(!Region::SafeLifted.is_proven_hard());
        assert!(!Region::GroundCircuit.is_proven_hard());
    }

    #[test]
    fn hardness_witness_matches_euler_and_connects() {
        // A dashed-red function: the witness is monotone with equal e,
        // hence ≃-connected (Proposition 6.1 / Theorem 6.2(a)).
        let phi = BoolFn::from_sat(3, [0b001u32, 0b010, 0b000]);
        let w = hardness_witness(&phi).expect("within monotone range");
        assert!(w.is_monotone());
        assert_eq!(w.euler_characteristic(), phi.euler_characteristic());
        assert!(crate::transform::steps_between(&phi, &w).is_ok());
        // Gray-region functions have no witness; tractable ones neither.
        assert!(hardness_witness(&max_euler_fn(4)).is_none());
        assert!(hardness_witness(&phi9()).is_none());
    }

    #[test]
    fn thresholds_span_regions() {
        // τ_0 = ⊤ degenerate; middle thresholds are hard monotone.
        assert_eq!(classify(&threshold_fn(4, 0)), Region::DegenerateObdd);
        assert_eq!(classify(&threshold_fn(4, 1)), Region::HardMonotone);
    }
}
