//! `¬`-`∨`-templates and fragmentability (Section 4 of the paper).
//!
//! A [`Template`] is a circuit of `¬` and `∨` gates over numbered holes
//! (Definition 4.1); a function is *fragmentable* (Definition 4.2) when
//! some template filled with *degenerate* functions is deterministic and
//! equivalent to it. [`Fragmentation::of`] realizes Propositions 5.1 +
//! 5.8: replay a `⊥ → φ` step sequence, producing for each step the
//! degenerate pair-function `ψ_i` with `SAT(ψ_i) = {ν_i, ν_i^(l_i)}` and
//! wrapping the template as `T ∨ ψ` (for `∼▷⁺`) or `¬(¬T ∨ ψ)` (for
//! `∼▷⁻`).

use intext_boolfn::BoolFn;

use crate::transform::{self, Step, StepKind, TransformError};

/// A `¬`-`∨`-template (Definition 4.1): internal nodes are negations or
/// binary disjunctions; leaves are numbered holes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Template {
    /// A hole, to be filled by the leaf function with this index.
    Hole(usize),
    /// Disjunction.
    Or(Box<Template>, Box<Template>),
    /// Negation.
    Not(Box<Template>),
}

impl Template {
    /// Number of gates (internal nodes) in the template.
    pub fn gate_count(&self) -> usize {
        match self {
            Template::Hole(_) => 0,
            Template::Or(a, b) => 1 + a.gate_count() + b.gate_count(),
            Template::Not(a) => 1 + a.gate_count(),
        }
    }

    /// Number of `¬` gates — the resource Section 7's "using fewer
    /// negations" question is about.
    pub fn negation_count(&self) -> usize {
        match self {
            Template::Hole(_) => 0,
            Template::Or(a, b) => a.negation_count() + b.negation_count(),
            Template::Not(a) => 1 + a.negation_count(),
        }
    }
}

/// A fragmentation witness: a template plus one degenerate Boolean
/// function per hole, whose (deterministic) composition equals the
/// original function.
#[derive(Clone, Debug)]
pub struct Fragmentation {
    /// The `¬`-`∨`-template.
    pub template: Template,
    /// Leaf functions; `leaves[i]` fills `Hole(i)`. All degenerate.
    pub leaves: Vec<BoolFn>,
}

impl Fragmentation {
    /// Fragments a function with zero Euler characteristic
    /// (Proposition 5.1 via Propositions 5.9 + 5.8).
    pub fn of(phi: &BoolFn) -> Result<Fragmentation, TransformError> {
        let to_bottom = transform::steps_to_bottom(phi)?;
        let build_up = transform::invert_steps(&to_bottom);
        Ok(Self::from_steps(phi.num_vars(), &build_up))
    }

    /// Proposition 5.8: builds the template from a validated `⊥ → φ`
    /// step sequence.
    pub fn from_steps(n: u8, steps_from_bottom: &[Step]) -> Fragmentation {
        let mut template = Template::Hole(0);
        let mut leaves = vec![BoolFn::bottom(n)];
        for step in steps_from_bottom {
            let pair = BoolFn::from_sat(n, [step.nu, step.partner()]);
            debug_assert!(
                pair.is_degenerate(),
                "pair functions ignore the flipped variable"
            );
            let idx = leaves.len();
            leaves.push(pair);
            template = match step.kind {
                StepKind::Add => Template::Or(Box::new(template), Box::new(Template::Hole(idx))),
                StepKind::Remove => Template::Not(Box::new(Template::Or(
                    Box::new(Template::Not(Box::new(template))),
                    Box::new(Template::Hole(idx)),
                ))),
            };
        }
        Fragmentation { template, leaves }
    }

    /// Evaluates the filled template back into a truth table
    /// (for verification: must equal the fragmented function).
    pub fn to_boolfn(&self) -> BoolFn {
        self.eval_node(&self.template)
    }

    fn eval_node(&self, t: &Template) -> BoolFn {
        match t {
            Template::Hole(i) => self.leaves[*i].clone(),
            Template::Or(a, b) => &self.eval_node(a) | &self.eval_node(b),
            Template::Not(a) => !&self.eval_node(a),
        }
    }

    /// Checks that every `∨` of the filled template is deterministic
    /// (Definition 4.1: its two inputs are disjoint functions).
    pub fn is_deterministic(&self) -> bool {
        self.check_det(&self.template).is_some()
    }

    fn check_det(&self, t: &Template) -> Option<BoolFn> {
        match t {
            Template::Hole(i) => Some(self.leaves[*i].clone()),
            Template::Not(a) => Some(!&self.check_det(a)?),
            Template::Or(a, b) => {
                let fa = self.check_det(a)?;
                let fb = self.check_det(b)?;
                if fa.is_disjoint(&fb) {
                    Some(&fa | &fb)
                } else {
                    None
                }
            }
        }
    }

    /// Number of holes/leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{phi9, phi_no_pm, small};

    #[test]
    fn phi9_fragmentation_round_trips() {
        let frag = Fragmentation::of(&phi9()).unwrap();
        assert_eq!(frag.to_boolfn(), phi9());
        assert!(frag.is_deterministic());
        for leaf in &frag.leaves {
            assert!(leaf.is_degenerate());
        }
    }

    #[test]
    fn example_4_3_style_fragmentation_validates() {
        // The paper's hand-built fragmentation of phi9: T = l0∨l1∨l2∨l3
        // with the four disjoint degenerate pieces of Example 4.3.
        let l0 = BoolFn::from_sat(4, [0b1001u32, 0b1011]); // 0∧¬2∧3
        let l1 = BoolFn::from_sat(4, [0b1100u32, 0b1101]); // ¬1∧2∧3
        let l2 = BoolFn::from_sat(4, [0b1010u32, 0b1110]); // ¬0∧1∧3
        let l3 = BoolFn::from_sat(4, [0b0111u32, 0b1111]); // 0∧1∧2
        let template = Template::Or(
            Box::new(Template::Or(
                Box::new(Template::Or(
                    Box::new(Template::Hole(0)),
                    Box::new(Template::Hole(1)),
                )),
                Box::new(Template::Hole(2)),
            )),
            Box::new(Template::Hole(3)),
        );
        let frag = Fragmentation {
            template,
            leaves: vec![l0, l1, l2, l3],
        };
        assert!(frag.is_deterministic());
        assert_eq!(frag.to_boolfn(), phi9());
        assert_eq!(
            frag.template.negation_count(),
            0,
            "Example 4.3 uses no negations"
        );
    }

    #[test]
    fn two_sided_functions_need_negations() {
        // φ_no-PM cannot be reached by additions alone (Figure 5), so its
        // fragmentation must use ¬ gates.
        let frag = Fragmentation::of(&phi_no_pm()).unwrap();
        assert_eq!(frag.to_boolfn(), phi_no_pm());
        assert!(frag.is_deterministic());
        assert!(frag.template.negation_count() > 0);
    }

    #[test]
    fn nonzero_euler_not_fragmentable_by_us() {
        // Proposition 4.6 contrapositive: our constructor refuses e ≠ 0.
        let f = intext_boolfn::max_euler_fn(3);
        assert!(Fragmentation::of(&f).is_err());
    }

    #[test]
    fn fragmentation_exhaustive_k2() {
        // Corollary 5.4, constructive half: every e = 0 function on 3
        // variables is fragmentable, with verified determinism.
        for t in 0..256u64 {
            if small::euler(3, t) != 0 {
                continue;
            }
            let phi = BoolFn::from_table_u64(3, t);
            let frag = Fragmentation::of(&phi).unwrap();
            assert_eq!(frag.to_boolfn(), phi, "t={t:#x}");
            assert!(frag.is_deterministic(), "t={t:#x}");
            assert!(frag.leaves.iter().all(BoolFn::is_degenerate), "t={t:#x}");
        }
    }

    #[test]
    fn gate_counts() {
        let frag = Fragmentation::of(&phi9()).unwrap();
        let t = &frag.template;
        assert!(t.gate_count() >= frag.num_leaves() - 1);
        assert_eq!(
            t.gate_count(),
            t.negation_count() + (frag.num_leaves() - 1) // one Or per non-initial leaf
        );
    }
}
