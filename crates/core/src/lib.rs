//! The paper's contribution: compiling safe `H`-queries into
//! deterministic decomposable circuits in polynomial time
//! (Monet, *Solving a Special Case of the Intensional vs Extensional
//! Conjecture in Probabilistic Databases*, PODS 2020).
//!
//! # The pipeline (Theorem 5.2)
//!
//! For any Boolean function `φ` with zero Euler characteristic:
//!
//! 1. **Transformation** ([`transform`]) — produce a sequence of
//!    elementary `∼▷±` steps (Definition 5.5: add or remove two
//!    *adjacent* satisfying valuations) from `⊥` to `φ`, via the
//!    fetching lemma (5.11) and chainkilling/chainswapping (5.10); this
//!    is Proposition 5.9 made executable.
//! 2. **Fragmentation** ([`template`]) — replay the steps as a
//!    `¬`-`∨`-template over *degenerate* pair-functions `ψ_i` with
//!    `SAT(ψ_i) = {ν, ν^(l)}` (Proposition 5.8). Every `∨` in the
//!    template is deterministic by construction.
//! 3. **Compilation** ([`pipeline`]) — compile each degenerate leaf into
//!    an OBDD by the grouped-order automaton of `intext-lineage`
//!    (Proposition 3.7), convert to circuit gates, and plug into the
//!    template (Proposition 4.4). The result is a d-D for
//!    `Lin(Q_φ, D)`, built in time polynomial in `|D|`, on which the
//!    probability is one bottom-up pass.
//!
//! Since every safe `H⁺`-query has `e(φ) = 0` (Corollary 3.9), this
//! proves Corollary 5.3: **all safe `H⁺`-queries are in d-D(PTIME)** —
//! inclusion–exclusion simulated by negation, refuting the expected
//! intensional/extensional separation on this class.
//!
//! The remaining modules implement the rest of the paper: [`transfer`]
//! realizes Theorem 6.2 (queries with equal Euler characteristic are
//! PQE-interreducible and d-D-equivalent), and [`classify()`](classify::classify) computes the
//! region map of Figure 1 (with Proposition 6.4's hardness transfer).

pub mod classify;
pub mod negfree;
pub mod pipeline;
pub mod template;
pub mod transfer;
pub mod transform;

pub use classify::{classify, hardness_witness, Region};
pub use negfree::{negation_free_fragmentation, removal_only_steps};
pub use pipeline::{compile_dd, CompileError, CompiledLineage};
pub use template::{Fragmentation, Template};
pub use transfer::{pqe_via_transfer, transfer_circuit};
pub use transform::{
    apply_steps, fetch_path, invert_steps, is_canonical, steps_between, steps_to_bottom,
    steps_to_canonical, steps_to_even_only, Step, StepError, StepKind, TransformError,
};
