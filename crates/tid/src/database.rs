//! Relational instances over the `H`-query vocabulary.

use std::collections::HashMap;
use std::fmt;

/// A relation symbol of the `h_{k,i}` vocabulary (Definition 3.1):
/// unary `R` and `T`, binary `S_1, ..., S_k`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Relation {
    /// The unary relation `R`.
    R,
    /// The binary relation `S_i` (`1 <= i <= k`).
    S(u8),
    /// The unary relation `T`.
    T,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::R => write!(f, "R"),
            Relation::S(i) => write!(f, "S{i}"),
            Relation::T => write!(f, "T"),
        }
    }
}

/// Identifier of a tuple inside a [`Database`]; doubles as the Boolean
/// variable naming that tuple in lineages, circuits and OBDDs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TupleId(pub u32);

/// A fully-described tuple.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TupleDesc {
    /// `R(a)`.
    R(u32),
    /// `S_i(a, b)`.
    S(u8, u32, u32),
    /// `T(b)`.
    T(u32),
}

impl fmt::Display for TupleDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TupleDesc::R(a) => write!(f, "R({a})"),
            TupleDesc::S(i, a, b) => write!(f, "S{i}({a},{b})"),
            TupleDesc::T(b) => write!(f, "T({b})"),
        }
    }
}

/// Errors from database construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatabaseError {
    /// `S_i` index outside `1..=k`.
    BadRelationIndex(u8),
    /// Constant outside the declared domain.
    BadConstant(u32),
    /// The tuple was already inserted.
    DuplicateTuple(TupleDesc),
    /// No tuple with this id exists (removal of a dangling id).
    UnknownTuple(TupleId),
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::BadRelationIndex(i) => write!(f, "relation index S{i} out of range"),
            DatabaseError::BadConstant(c) => write!(f, "constant {c} outside the domain"),
            DatabaseError::DuplicateTuple(t) => write!(f, "duplicate tuple {t}"),
            DatabaseError::UnknownTuple(id) => write!(f, "no tuple with id {}", id.0),
        }
    }
}

impl std::error::Error for DatabaseError {}

/// A relational instance over the vocabulary `R, S_1..S_k, T` with the
/// active domain `{0, ..., domain_size - 1}`.
#[derive(Clone, Debug)]
pub struct Database {
    k: u8,
    domain_size: u32,
    tuples: Vec<TupleDesc>,
    r: HashMap<u32, TupleId>,
    s: Vec<HashMap<(u32, u32), TupleId>>,
    t: HashMap<u32, TupleId>,
}

impl Database {
    /// Creates an empty instance for chain length `k` and the given domain.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: u8, domain_size: u32) -> Self {
        assert!(k >= 1, "the h_{{k,i}} queries need k >= 1");
        Database {
            k,
            domain_size,
            tuples: Vec::new(),
            r: HashMap::new(),
            s: vec![HashMap::new(); usize::from(k)],
            t: HashMap::new(),
        }
    }

    /// The chain length `k` of the vocabulary.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The canonical `R/S1../T` naming view over this database's
    /// physical schema (see [`crate::Vocabulary::h`]).
    pub fn vocabulary(&self) -> crate::Vocabulary {
        crate::Vocabulary::h(self.k)
    }

    /// Size of the active domain.
    pub fn domain_size(&self) -> u32 {
        self.domain_size
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    fn check_const(&self, c: u32) -> Result<(), DatabaseError> {
        if c < self.domain_size {
            Ok(())
        } else {
            Err(DatabaseError::BadConstant(c))
        }
    }

    /// Inserts a tuple, returning its fresh [`TupleId`].
    pub fn insert(&mut self, tuple: TupleDesc) -> Result<TupleId, DatabaseError> {
        let id = TupleId(u32::try_from(self.tuples.len()).expect("tuple count fits u32"));
        match tuple {
            TupleDesc::R(a) => {
                self.check_const(a)?;
                if self.r.contains_key(&a) {
                    return Err(DatabaseError::DuplicateTuple(tuple));
                }
                self.r.insert(a, id);
            }
            TupleDesc::S(i, a, b) => {
                if i == 0 || i > self.k {
                    return Err(DatabaseError::BadRelationIndex(i));
                }
                self.check_const(a)?;
                self.check_const(b)?;
                let rel = &mut self.s[usize::from(i) - 1];
                if rel.contains_key(&(a, b)) {
                    return Err(DatabaseError::DuplicateTuple(tuple));
                }
                rel.insert((a, b), id);
            }
            TupleDesc::T(b) => {
                self.check_const(b)?;
                if self.t.contains_key(&b) {
                    return Err(DatabaseError::DuplicateTuple(tuple));
                }
                self.t.insert(b, id);
            }
        }
        self.tuples.push(tuple);
        Ok(id)
    }

    /// Removes a tuple, returning its description. Tuple ids stay dense:
    /// every id above the removed one shifts down by one, exactly
    /// mirroring how re-inserting the remaining tuples in order would
    /// number them — so downstream shape comparisons and incremental
    /// artifact patches see the same ids a fresh build would.
    pub fn remove(&mut self, id: TupleId) -> Result<TupleDesc, DatabaseError> {
        if id.0 as usize >= self.tuples.len() {
            return Err(DatabaseError::UnknownTuple(id));
        }
        let removed = self.tuples.remove(id.0 as usize);
        self.r.clear();
        self.t.clear();
        for rel in &mut self.s {
            rel.clear();
        }
        for (i, &tuple) in self.tuples.iter().enumerate() {
            let id = TupleId(i as u32);
            match tuple {
                TupleDesc::R(a) => {
                    self.r.insert(a, id);
                }
                TupleDesc::S(j, a, b) => {
                    self.s[usize::from(j) - 1].insert((a, b), id);
                }
                TupleDesc::T(b) => {
                    self.t.insert(b, id);
                }
            }
        }
        Ok(removed)
    }

    /// Looks up `R(a)`.
    pub fn r_tuple(&self, a: u32) -> Option<TupleId> {
        self.r.get(&a).copied()
    }

    /// Looks up `S_i(a, b)`.
    pub fn s_tuple(&self, i: u8, a: u32, b: u32) -> Option<TupleId> {
        debug_assert!(i >= 1 && i <= self.k);
        self.s[usize::from(i) - 1].get(&(a, b)).copied()
    }

    /// Looks up `T(b)`.
    pub fn t_tuple(&self, b: u32) -> Option<TupleId> {
        self.t.get(&b).copied()
    }

    /// Generic lookup by description.
    pub fn tuple_id(&self, tuple: TupleDesc) -> Option<TupleId> {
        match tuple {
            TupleDesc::R(a) => self.r_tuple(a),
            TupleDesc::S(i, a, b) => self.s_tuple(i, a, b),
            TupleDesc::T(b) => self.t_tuple(b),
        }
    }

    /// The description of a tuple id.
    pub fn describe(&self, id: TupleId) -> TupleDesc {
        self.tuples[id.0 as usize]
    }

    /// Iterates over `(id, description)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, TupleDesc)> + '_ {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, &t)| (TupleId(i as u32), t))
    }

    /// All facts of `S_i`, as `((a, b), id)`.
    pub fn s_facts(&self, i: u8) -> impl Iterator<Item = ((u32, u32), TupleId)> + '_ {
        debug_assert!(i >= 1 && i <= self.k);
        self.s[usize::from(i) - 1].iter().map(|(&ab, &id)| (ab, id))
    }

    /// `true` iff `other` has the same *shape*: chain length, domain, and
    /// tuple list in insertion order — exactly the database component of a
    /// compiled-lineage cache key. Two same-shape instances assign every
    /// tuple the same [`TupleId`], so a circuit compiled against one walks
    /// correctly under the other's probabilities. A plain `Vec` compare:
    /// cheaper than building and hashing a key, which is what batch
    /// evaluation uses it to avoid on runs of same-shape scenarios.
    pub fn same_shape(&self, other: &Database) -> bool {
        self.k == other.k && self.domain_size == other.domain_size && self.tuples == other.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new(2, 3);
        let r0 = db.insert(TupleDesc::R(0)).unwrap();
        let s = db.insert(TupleDesc::S(1, 0, 2)).unwrap();
        let t = db.insert(TupleDesc::T(2)).unwrap();
        assert_eq!(db.r_tuple(0), Some(r0));
        assert_eq!(db.r_tuple(1), None);
        assert_eq!(db.s_tuple(1, 0, 2), Some(s));
        assert_eq!(db.s_tuple(2, 0, 2), None);
        assert_eq!(db.t_tuple(2), Some(t));
        assert_eq!(db.len(), 3);
        assert_eq!(db.describe(s), TupleDesc::S(1, 0, 2));
    }

    #[test]
    fn duplicate_rejected() {
        let mut db = Database::new(1, 2);
        db.insert(TupleDesc::R(1)).unwrap();
        assert_eq!(
            db.insert(TupleDesc::R(1)),
            Err(DatabaseError::DuplicateTuple(TupleDesc::R(1)))
        );
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut db = Database::new(1, 2);
        assert_eq!(
            db.insert(TupleDesc::T(2)),
            Err(DatabaseError::BadConstant(2))
        );
    }

    #[test]
    fn bad_relation_index_rejected() {
        let mut db = Database::new(2, 2);
        assert_eq!(
            db.insert(TupleDesc::S(3, 0, 0)),
            Err(DatabaseError::BadRelationIndex(3))
        );
        assert_eq!(
            db.insert(TupleDesc::S(0, 0, 0)),
            Err(DatabaseError::BadRelationIndex(0))
        );
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut db = Database::new(1, 4);
        for a in 0..4 {
            assert_eq!(db.insert(TupleDesc::R(a)).unwrap(), TupleId(a));
        }
        let ids: Vec<u32> = db.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn remove_shifts_ids_like_a_fresh_build() {
        let mut db = Database::new(2, 3);
        db.insert(TupleDesc::R(0)).unwrap();
        db.insert(TupleDesc::S(1, 0, 2)).unwrap();
        db.insert(TupleDesc::S(2, 1, 1)).unwrap();
        db.insert(TupleDesc::T(2)).unwrap();
        assert_eq!(db.remove(TupleId(1)).unwrap(), TupleDesc::S(1, 0, 2));
        // Later ids shifted down; lookups agree with the new numbering.
        assert_eq!(db.len(), 3);
        assert_eq!(db.s_tuple(1, 0, 2), None);
        assert_eq!(db.s_tuple(2, 1, 1), Some(TupleId(1)));
        assert_eq!(db.t_tuple(2), Some(TupleId(2)));
        assert_eq!(db.describe(TupleId(2)), TupleDesc::T(2));
        // Same shape as building the remainder from scratch.
        let mut fresh = Database::new(2, 3);
        fresh.insert(TupleDesc::R(0)).unwrap();
        fresh.insert(TupleDesc::S(2, 1, 1)).unwrap();
        fresh.insert(TupleDesc::T(2)).unwrap();
        assert!(db.same_shape(&fresh));
        // Dangling ids are typed errors, and remove-then-reinsert is
        // an identity on the id assignment.
        assert_eq!(
            db.remove(TupleId(3)),
            Err(DatabaseError::UnknownTuple(TupleId(3)))
        );
        assert_eq!(db.insert(TupleDesc::S(1, 0, 2)).unwrap(), TupleId(3));
    }

    #[test]
    fn same_shape_tracks_order_domain_and_k() {
        let mut a = Database::new(1, 2);
        a.insert(TupleDesc::R(0)).unwrap();
        a.insert(TupleDesc::T(1)).unwrap();
        let b = a.clone();
        assert!(a.same_shape(&b));
        // Same tuples, different insertion order: different shape.
        let mut rev = Database::new(1, 2);
        rev.insert(TupleDesc::T(1)).unwrap();
        rev.insert(TupleDesc::R(0)).unwrap();
        assert!(!a.same_shape(&rev));
        // Different domain size alone changes the shape.
        let mut wide = Database::new(1, 3);
        wide.insert(TupleDesc::R(0)).unwrap();
        wide.insert(TupleDesc::T(1)).unwrap();
        assert!(!a.same_shape(&wide));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TupleDesc::S(2, 1, 3).to_string(), "S2(1,3)");
        assert_eq!(Relation::S(2).to_string(), "S2");
        assert_eq!(TupleDesc::R(7).to_string(), "R(7)");
    }
}
