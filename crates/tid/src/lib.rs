//! Tuple-independent probabilistic databases (the TID model, Section 2).
//!
//! A TID instance is a relational database `D` plus a map `π` assigning
//! each tuple an independent probability; it induces a distribution over
//! the sub-databases `D' ⊆ D` by `Pr(D') = Π_{t∈D'} π(t) · Π_{t∉D'}(1-π(t))`.
//!
//! The `H`-queries of the paper are formulated over a fixed vocabulary —
//! a unary `R`, binary `S_1, ..., S_k`, and a unary `T` — so [`Database`]
//! stores exactly these relations (parameterized by `k`), with dense
//! tuple identifiers suitable as circuit/OBDD variables. Probabilities
//! are exact rationals ([`Tid`]); the generators module builds the
//! synthetic workloads used by the experiments.

mod database;
mod gen;
mod tid;
mod vocabulary;

pub use database::{Database, DatabaseError, Relation, TupleDesc, TupleId};
pub use gen::{complete_database, random_database, random_tid, uniform_tid, DbGenConfig};
pub use tid::{Tid, TidError};
pub use vocabulary::{Vocabulary, VocabularyError};
