//! Workload generators for the experiments.
//!
//! The paper's algorithms are data-complexity results, so the experiments
//! sweep over synthetic instances of growing domain size: complete
//! instances (every possible tuple present — the worst case for lineage
//! size) and random sub-instances at a given density, with random
//! rational probabilities of bounded denominator so exact arithmetic
//! stays fast.

use intext_numeric::BigRational;
use rand::Rng;

use crate::{Database, Tid, TupleDesc};

/// Configuration for [`random_database`].
#[derive(Clone, Copy, Debug)]
pub struct DbGenConfig {
    /// Chain length `k` of the vocabulary.
    pub k: u8,
    /// Domain size `n` (constants `0..n`).
    pub domain_size: u32,
    /// Probability that each potential tuple is present.
    pub density: f64,
    /// Probabilities are drawn as `num/denom` with `1 <= num < denom`.
    pub prob_denominator: u64,
}

impl Default for DbGenConfig {
    fn default() -> Self {
        DbGenConfig {
            k: 3,
            domain_size: 3,
            density: 0.7,
            prob_denominator: 10,
        }
    }
}

/// The complete instance: all of `R(a)`, `S_i(a,b)`, `T(b)` for the whole
/// domain — `2n + k·n²` tuples.
pub fn complete_database(k: u8, domain_size: u32) -> Database {
    let mut db = Database::new(k, domain_size);
    for a in 0..domain_size {
        db.insert(TupleDesc::R(a)).expect("fresh tuple");
    }
    for i in 1..=k {
        for a in 0..domain_size {
            for b in 0..domain_size {
                db.insert(TupleDesc::S(i, a, b)).expect("fresh tuple");
            }
        }
    }
    for b in 0..domain_size {
        db.insert(TupleDesc::T(b)).expect("fresh tuple");
    }
    db
}

/// A random sub-instance of the complete database, each potential tuple
/// kept independently with probability `density`.
pub fn random_database(cfg: &DbGenConfig, rng: &mut impl Rng) -> Database {
    fn maybe_insert(db: &mut Database, t: TupleDesc, density: f64, rng: &mut impl Rng) {
        if rng.random::<f64>() < density {
            db.insert(t).expect("fresh tuple");
        }
    }
    let mut db = Database::new(cfg.k, cfg.domain_size);
    for a in 0..cfg.domain_size {
        maybe_insert(&mut db, TupleDesc::R(a), cfg.density, rng);
    }
    for i in 1..=cfg.k {
        for a in 0..cfg.domain_size {
            for b in 0..cfg.domain_size {
                maybe_insert(&mut db, TupleDesc::S(i, a, b), cfg.density, rng);
            }
        }
    }
    for b in 0..cfg.domain_size {
        maybe_insert(&mut db, TupleDesc::T(b), cfg.density, rng);
    }
    db
}

/// Annotates every tuple with the same probability.
pub fn uniform_tid(db: Database, p: BigRational) -> Tid {
    let n = db.len();
    Tid::new(db, vec![p; n]).expect("uniform probability validated by caller")
}

/// Annotates tuples with independent random rationals `num/denom`,
/// `1 <= num < denom` (never 0 or 1, keeping every world possible).
pub fn random_tid(db: Database, denom: u64, rng: &mut impl Rng) -> Tid {
    assert!(denom >= 2, "denominator must allow a proper fraction");
    let probs = (0..db.len())
        .map(|_| {
            let num = rng.random_range(1..denom);
            BigRational::from_ratio(num as i64, denom)
        })
        .collect();
    Tid::new(db, probs).expect("generated probabilities are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_database_counts() {
        let db = complete_database(3, 4);
        assert_eq!(db.len(), (2 * 4 + 3 * 16) as usize);
        assert!(db.r_tuple(3).is_some());
        assert!(db.s_tuple(2, 3, 0).is_some());
        assert!(db.t_tuple(0).is_some());
    }

    #[test]
    fn random_database_respects_density_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let all = random_database(
            &DbGenConfig {
                k: 2,
                domain_size: 3,
                density: 1.0,
                prob_denominator: 10,
            },
            &mut rng,
        );
        assert_eq!(all.len(), (2 * 3 + 2 * 9) as usize);
        let none = random_database(
            &DbGenConfig {
                k: 2,
                domain_size: 3,
                density: 0.0,
                prob_denominator: 10,
            },
            &mut rng,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn random_tid_probabilities_are_proper() {
        let mut rng = StdRng::seed_from_u64(42);
        let tid = random_tid(complete_database(2, 2), 10, &mut rng);
        for (id, _) in tid.database().iter().collect::<Vec<_>>() {
            let p = tid.prob(id);
            assert!(p.is_probability());
            assert!(!p.is_zero() && !p.is_one());
        }
    }

    #[test]
    fn uniform_tid_assigns_everywhere() {
        let tid = uniform_tid(complete_database(1, 2), BigRational::from_ratio(1, 2));
        for (id, _) in tid.database().iter().collect::<Vec<_>>() {
            assert_eq!(tid.prob(id), &BigRational::from_ratio(1, 2));
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let cfg = DbGenConfig {
            k: 2,
            domain_size: 4,
            density: 0.5,
            prob_denominator: 10,
        };
        let a = random_database(&cfg, &mut StdRng::seed_from_u64(1));
        let b = random_database(&cfg, &mut StdRng::seed_from_u64(1));
        let ta: Vec<_> = a.iter().map(|(_, t)| t).collect();
        let tb: Vec<_> = b.iter().map(|(_, t)| t).collect();
        assert_eq!(ta, tb);
    }
}
