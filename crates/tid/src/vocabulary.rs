//! Named vocabularies over the fixed physical schema.
//!
//! The storage layer is hard-wired to the paper's `H` signature — two
//! unary relations and `k` binary ones ([`Relation`]) — but nothing
//! forces *users* to spell them `R`, `S1..Sk`, `T`. A [`Vocabulary`] is
//! a naming view: it maps user-facing relation names (checked, distinct
//! identifiers) onto the physical [`Relation`] slots, so the UCQ parser
//! can resolve `Person(x), Knows(x,y)` against a database whose first
//! unary relation plays `Person` and whose first binary relation plays
//! `Knows`. The mapping is positional and total: the first unary name
//! is [`Relation::R`], the second is [`Relation::T`], and the `i`-th
//! binary name is `Relation::S(i+1)`.
//!
//! A vocabulary is *not* stored inside [`Database`] — the physical
//! shape (and with it cache keys, shape equality, and the store format)
//! stays name-free. [`Database::vocabulary`] hands out the canonical
//! `R/S1../T` view for the database's `k`.

use std::fmt;

use crate::database::Relation;

/// Why a set of names does not form a valid [`Vocabulary`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VocabularyError {
    /// The physical schema has exactly two unary relations.
    UnaryCount(usize),
    /// At least one binary relation is required (`k ≥ 1`).
    NoBinary,
    /// More binary names than `Relation::S(u8)` can index.
    TooManyBinary(usize),
    /// A name is not an identifier (`[A-Za-z_][A-Za-z0-9_]*`).
    BadName(String),
    /// The same name was used for two relations.
    DuplicateName(String),
}

impl fmt::Display for VocabularyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VocabularyError::UnaryCount(n) => {
                write!(f, "a vocabulary needs exactly 2 unary names, got {n}")
            }
            VocabularyError::NoBinary => write!(f, "a vocabulary needs at least 1 binary name"),
            VocabularyError::TooManyBinary(n) => {
                write!(f, "{n} binary names exceed the schema maximum of 255")
            }
            VocabularyError::BadName(name) => {
                write!(f, "relation name {name:?} is not an identifier")
            }
            VocabularyError::DuplicateName(name) => {
                write!(f, "relation name {name:?} is used twice")
            }
        }
    }
}

impl std::error::Error for VocabularyError {}

/// Is `name` an identifier the UCQ grammar can tokenize?
fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A naming view over the physical `H` schema: two unary relation
/// names (mapped to [`Relation::R`] and [`Relation::T`] in order) and
/// `k ≥ 1` binary names (mapped to `Relation::S(1)..Relation::S(k)`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Vocabulary {
    unary: Vec<String>,
    binary: Vec<String>,
}

impl Vocabulary {
    /// Builds a vocabulary from user-chosen names, validating that all
    /// names are distinct identifiers and the counts match the physical
    /// schema (exactly 2 unary, `1..=255` binary).
    pub fn new(unary: Vec<String>, binary: Vec<String>) -> Result<Vocabulary, VocabularyError> {
        if unary.len() != 2 {
            return Err(VocabularyError::UnaryCount(unary.len()));
        }
        if binary.is_empty() {
            return Err(VocabularyError::NoBinary);
        }
        if binary.len() > usize::from(u8::MAX) {
            return Err(VocabularyError::TooManyBinary(binary.len()));
        }
        let mut seen: Vec<&str> = Vec::with_capacity(unary.len() + binary.len());
        for name in unary.iter().chain(binary.iter()) {
            if !is_identifier(name) {
                return Err(VocabularyError::BadName(name.clone()));
            }
            if seen.contains(&name.as_str()) {
                return Err(VocabularyError::DuplicateName(name.clone()));
            }
            seen.push(name);
        }
        Ok(Vocabulary { unary, binary })
    }

    /// The canonical paper vocabulary for arity `k`: `R`, `T`, and
    /// `S1..Sk` — the names [`Relation`]'s own `Display` uses.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the `H` schema needs at least one `S_i`).
    pub fn h(k: u8) -> Vocabulary {
        assert!(k >= 1, "the H vocabulary needs k >= 1");
        Vocabulary {
            unary: vec!["R".to_string(), "T".to_string()],
            binary: (1..=k).map(|i| format!("S{i}")).collect(),
        }
    }

    /// How many binary relations this vocabulary names.
    pub fn k(&self) -> u8 {
        self.binary.len() as u8
    }

    /// Resolves a `(name, arity)` pair to its physical slot; `None` if
    /// the name is unknown or known at a different arity.
    pub fn resolve(&self, name: &str, arity: usize) -> Option<Relation> {
        match arity {
            1 => match self.unary.iter().position(|n| n == name) {
                Some(0) => Some(Relation::R),
                Some(_) => Some(Relation::T),
                None => None,
            },
            2 => self
                .binary
                .iter()
                .position(|n| n == name)
                .map(|i| Relation::S(i as u8 + 1)),
            _ => None,
        }
    }

    /// The user-facing name of a physical relation; `None` if the slot
    /// is outside this vocabulary (an `S_i` with `i > k`).
    pub fn relation_name(&self, rel: Relation) -> Option<&str> {
        match rel {
            Relation::R => Some(self.unary[0].as_str()),
            Relation::T => Some(self.unary[1].as_str()),
            Relation::S(i) => self
                .binary
                .get(usize::from(i).checked_sub(1)?)
                .map(String::as_str),
        }
    }

    /// The two unary names, in `R`-then-`T` order.
    pub fn unary_names(&self) -> &[String] {
        &self.unary
    }

    /// The `k` binary names, in `S1..Sk` order.
    pub fn binary_names(&self) -> &[String] {
        &self.binary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_vocabulary_matches_relation_display() {
        let voc = Vocabulary::h(3);
        assert_eq!(voc.k(), 3);
        for rel in [
            Relation::R,
            Relation::T,
            Relation::S(1),
            Relation::S(2),
            Relation::S(3),
        ] {
            let name = voc.relation_name(rel).unwrap();
            assert_eq!(name, rel.to_string());
            let arity = if matches!(rel, Relation::S(_)) { 2 } else { 1 };
            assert_eq!(voc.resolve(name, arity), Some(rel));
        }
        assert_eq!(voc.relation_name(Relation::S(4)), None);
        assert_eq!(voc.resolve("R", 2), None);
        assert_eq!(voc.resolve("S1", 1), None);
        assert_eq!(voc.resolve("Q", 1), None);
    }

    #[test]
    fn custom_names_map_positionally() {
        let voc = Vocabulary::new(
            vec!["Person".into(), "City".into()],
            vec!["Knows".into(), "LivesIn".into()],
        )
        .unwrap();
        assert_eq!(voc.resolve("Person", 1), Some(Relation::R));
        assert_eq!(voc.resolve("City", 1), Some(Relation::T));
        assert_eq!(voc.resolve("Knows", 2), Some(Relation::S(1)));
        assert_eq!(voc.resolve("LivesIn", 2), Some(Relation::S(2)));
        assert_eq!(voc.relation_name(Relation::S(2)), Some("LivesIn"));
    }

    #[test]
    fn validation_rejects_bad_shapes_and_names() {
        assert_eq!(
            Vocabulary::new(vec!["R".into()], vec!["S".into()]),
            Err(VocabularyError::UnaryCount(1))
        );
        assert_eq!(
            Vocabulary::new(vec!["R".into(), "T".into()], vec![]),
            Err(VocabularyError::NoBinary)
        );
        assert_eq!(
            Vocabulary::new(vec!["R".into(), "T".into()], vec!["9S".into()]),
            Err(VocabularyError::BadName("9S".into()))
        );
        assert_eq!(
            Vocabulary::new(vec!["R".into(), "R".into()], vec!["S".into()]),
            Err(VocabularyError::DuplicateName("R".into()))
        );
        assert_eq!(
            Vocabulary::new(vec!["R".into(), "T".into()], vec!["".into()]),
            Err(VocabularyError::BadName("".into()))
        );
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn h_requires_positive_k() {
        let _ = Vocabulary::h(0);
    }
}
