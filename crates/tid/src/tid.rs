//! Probability annotations on top of a [`Database`].

use std::fmt;

use intext_numeric::BigRational;

use crate::{Database, DatabaseError, TupleDesc, TupleId};

/// Errors from TID construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TidError {
    /// A probability outside `[0, 1]`.
    OutOfRange(TupleId),
    /// Probability vector length differs from the tuple count.
    LengthMismatch { tuples: usize, probs: usize },
    /// The underlying instance rejected a structural update.
    Database(DatabaseError),
}

impl fmt::Display for TidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TidError::OutOfRange(id) => {
                write!(f, "probability of tuple {id:?} outside [0, 1]")
            }
            TidError::LengthMismatch { tuples, probs } => {
                write!(f, "{probs} probabilities for {tuples} tuples")
            }
            TidError::Database(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TidError {}

impl From<DatabaseError> for TidError {
    fn from(e: DatabaseError) -> Self {
        TidError::Database(e)
    }
}

/// A tuple-independent database: an instance plus a probability per tuple.
#[derive(Clone, Debug)]
pub struct Tid {
    db: Database,
    probs: Vec<BigRational>,
}

impl Tid {
    /// Builds a TID, validating that every probability lies in `[0, 1]`
    /// and that the vector covers every tuple.
    pub fn new(db: Database, probs: Vec<BigRational>) -> Result<Self, TidError> {
        if probs.len() != db.len() {
            return Err(TidError::LengthMismatch {
                tuples: db.len(),
                probs: probs.len(),
            });
        }
        for (i, p) in probs.iter().enumerate() {
            if !p.is_probability() {
                return Err(TidError::OutOfRange(TupleId(i as u32)));
            }
        }
        Ok(Tid { db, probs })
    }

    /// The underlying instance.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Probability of a tuple.
    pub fn prob(&self, id: TupleId) -> &BigRational {
        &self.probs[id.0 as usize]
    }

    /// Probability of a tuple as `f64` (for benchmarks).
    pub fn prob_f64(&self, id: TupleId) -> f64 {
        self.probs[id.0 as usize].to_f64()
    }

    /// Replaces a tuple's probability — the "update and recompute" use
    /// case that motivates keeping compiled lineages around.
    pub fn set_prob(&mut self, id: TupleId, p: BigRational) -> Result<(), TidError> {
        if !p.is_probability() {
            return Err(TidError::OutOfRange(id));
        }
        self.probs[id.0 as usize] = p;
        Ok(())
    }

    /// Inserts a tuple with its probability — the live-update entry
    /// point. The new tuple takes the next dense [`TupleId`]; validation
    /// (probability range, duplicates, domain) happens before any state
    /// changes, so a failed insert leaves the TID untouched.
    pub fn insert(&mut self, tuple: TupleDesc, p: BigRational) -> Result<TupleId, TidError> {
        if !p.is_probability() {
            return Err(TidError::OutOfRange(TupleId(self.db.len() as u32)));
        }
        let id = self.db.insert(tuple)?;
        self.probs.push(p);
        Ok(id)
    }

    /// Removes a tuple, returning its description and probability. Ids
    /// above the removed one shift down by one (see
    /// [`Database::remove`]); the probability vector shifts with them.
    pub fn remove(&mut self, id: TupleId) -> Result<(TupleDesc, BigRational), TidError> {
        let desc = self.db.remove(id)?;
        let p = self.probs.remove(id.0 as usize);
        Ok((desc, p))
    }

    /// The probability of one possible world, specified as the bitmask of
    /// present tuples (tuple `i` present iff bit `i` is set). Requires at
    /// most 63 tuples (brute-force scale).
    ///
    /// # Panics
    /// Panics if the database has 64 or more tuples.
    pub fn world_probability(&self, world: u64) -> BigRational {
        assert!(self.db.len() < 64, "world bitmask supports < 64 tuples");
        let mut acc = BigRational::one();
        for (i, p) in self.probs.iter().enumerate() {
            if (world >> i) & 1 == 1 {
                acc = &acc * p;
            } else {
                acc = &acc * &p.complement();
            }
        }
        acc
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// `true` iff the database has no tuples.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TupleDesc;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn two_tuple_db() -> Database {
        let mut db = Database::new(1, 2);
        db.insert(TupleDesc::R(0)).unwrap();
        db.insert(TupleDesc::S(1, 0, 1)).unwrap();
        db
    }

    #[test]
    fn valid_construction_and_access() {
        let tid = Tid::new(two_tuple_db(), vec![r(1, 2), r(1, 3)]).unwrap();
        assert_eq!(tid.prob(TupleId(0)), &r(1, 2));
        assert_eq!(tid.prob(TupleId(1)), &r(1, 3));
        assert_eq!(tid.len(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            Tid::new(two_tuple_db(), vec![r(3, 2), r(1, 3)]).unwrap_err(),
            TidError::OutOfRange(TupleId(0))
        );
        assert_eq!(
            Tid::new(two_tuple_db(), vec![r(1, 2), r(-1, 3)]).unwrap_err(),
            TidError::OutOfRange(TupleId(1))
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        assert_eq!(
            Tid::new(two_tuple_db(), vec![r(1, 2)]).unwrap_err(),
            TidError::LengthMismatch {
                tuples: 2,
                probs: 1
            }
        );
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let tid = Tid::new(two_tuple_db(), vec![r(1, 2), r(1, 3)]).unwrap();
        let mut total = BigRational::zero();
        for w in 0..4u64 {
            total = &total + &tid.world_probability(w);
        }
        assert!(total.is_one());
        assert_eq!(tid.world_probability(0b11), r(1, 6));
        assert_eq!(tid.world_probability(0b00), r(1, 3));
    }

    #[test]
    fn insert_and_remove_keep_probs_aligned() {
        let mut tid = Tid::new(two_tuple_db(), vec![r(1, 2), r(1, 3)]).unwrap();
        let id = tid.insert(TupleDesc::T(1), r(1, 5)).unwrap();
        assert_eq!(id, TupleId(2));
        assert_eq!(tid.prob(id), &r(1, 5));
        // Failed inserts are atomic: nothing changed.
        assert_eq!(
            tid.insert(TupleDesc::T(1), r(1, 7)).unwrap_err(),
            TidError::Database(DatabaseError::DuplicateTuple(TupleDesc::T(1)))
        );
        assert_eq!(
            tid.insert(TupleDesc::R(1), r(7, 5)).unwrap_err(),
            TidError::OutOfRange(TupleId(3))
        );
        assert_eq!(tid.len(), 3);
        // Removal shifts the probability vector with the ids.
        let (desc, p) = tid.remove(TupleId(0)).unwrap();
        assert_eq!(desc, TupleDesc::R(0));
        assert_eq!(p, r(1, 2));
        assert_eq!(tid.prob(TupleId(0)), &r(1, 3));
        assert_eq!(tid.prob(TupleId(1)), &r(1, 5));
        assert_eq!(
            tid.remove(TupleId(9)).unwrap_err(),
            TidError::Database(DatabaseError::UnknownTuple(TupleId(9)))
        );
    }

    #[test]
    fn set_prob_validates() {
        let mut tid = Tid::new(two_tuple_db(), vec![r(1, 2), r(1, 3)]).unwrap();
        tid.set_prob(TupleId(0), r(2, 3)).unwrap();
        assert_eq!(tid.prob(TupleId(0)), &r(2, 3));
        assert!(tid.set_prob(TupleId(0), r(5, 3)).is_err());
    }
}
