//! Property-based tests: the possible-world semantics of TIDs.

use intext_numeric::BigRational;
use intext_tid::{random_database, random_tid, DbGenConfig, Tid, TupleId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_tid(seed: u64) -> Tid {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_database(
        &DbGenConfig {
            k: 2,
            domain_size: 2,
            density: 0.5,
            prob_denominator: 6,
        },
        &mut rng,
    );
    random_tid(db, 6, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn world_probabilities_form_a_distribution(seed in any::<u64>()) {
        let tid = small_tid(seed);
        prop_assume!(tid.len() <= 14);
        let mut total = BigRational::zero();
        for w in 0..(1u64 << tid.len()) {
            let p = tid.world_probability(w);
            prop_assert!(p.is_probability());
            total = &total + &p;
        }
        prop_assert!(total.is_one(), "sum = {}", total);
    }

    #[test]
    fn full_and_empty_world_probabilities(seed in any::<u64>()) {
        let tid = small_tid(seed);
        prop_assume!(tid.len() <= 14 && !tid.is_empty());
        let full = (1u64 << tid.len()) - 1;
        let mut expect_full = BigRational::one();
        let mut expect_empty = BigRational::one();
        for i in 0..tid.len() {
            let p = tid.prob(TupleId(i as u32));
            expect_full = &expect_full * p;
            expect_empty = &expect_empty * &p.complement();
        }
        prop_assert_eq!(tid.world_probability(full), expect_full);
        prop_assert_eq!(tid.world_probability(0), expect_empty);
    }

    #[test]
    fn updates_change_exactly_one_marginal(seed in any::<u64>(), num in 1i64..5) {
        let mut tid = small_tid(seed);
        prop_assume!(!tid.is_empty());
        let before: Vec<BigRational> =
            (0..tid.len()).map(|i| tid.prob(TupleId(i as u32)).clone()).collect();
        tid.set_prob(TupleId(0), BigRational::from_ratio(num, 5)).unwrap();
        for (i, b) in before.iter().enumerate() {
            let now = tid.prob(TupleId(i as u32));
            if i == 0 {
                prop_assert_eq!(now, &BigRational::from_ratio(num, 5));
            } else {
                prop_assert_eq!(now, b);
            }
        }
    }
}
