//! Extensional (lifted) probabilistic query evaluation for `H⁺`-queries.
//!
//! This is the baseline the paper's intensional pipeline is measured
//! against: Dalvi and Suciu's algorithm specialized to the `H`-query
//! vocabulary. For a monotone `φ` with minimized CNF clauses
//! `C_0, ..., C_n` (each a set of `h`-indices), Möbius inversion over the
//! CNF lattice (Definition 3.4, Appendix B.2) gives
//!
//! ```text
//! Pr(Q_φ) = Σ_{d ∈ L} µ(d, 1̂) · N(d),    N(d) = Pr(⋀_{j∈d} ¬h_{k,j})
//! ```
//!
//! The negative terms `N(d)` factorize over the maximal runs of
//! consecutive indices in `d`: a run not containing `0` or `k` decomposes
//! per `(a,b)` pair into a no-two-consecutive chain DP; a run containing
//! `0` (resp. `k`) groups by the x-value (resp. y-value) and conditions
//! on `R(a)` (resp. `T(b)`). The only non-factorizable run is the full
//! `[0..k]` — precisely the lattice bottom `0̂`, whose Möbius value is
//! zero exactly for the *safe* queries (Proposition 3.5), so the hard
//! subquery cancels and never needs to be evaluated. Asking for an unsafe
//! query returns [`ExtensionalError::NotSafe`].

mod lifted;
mod safety;

pub use lifted::{
    neg_h_probability, pqe_extensional, pqe_extensional_f64, pqe_extensional_with_lattice,
    pqe_extensional_with_lattice_f64, ExtensionalError,
};
pub use safety::{is_safe, is_safe_euler, SafetyError};
