//! The safety criterion for `H⁺`-queries.
//!
//! Proposition 3.5 (Dalvi–Suciu specialized by [6]): a monotone `φ` is
//! safe iff it is degenerate or `µ_CNF(0̂, 1̂) = 0`. Corollary 3.9 (the
//! paper's reformulation): safe iff `e(φ) = 0`. Both are implemented and
//! tested equal.

use std::fmt;

use intext_boolfn::BoolFn;
use intext_lattice::cnf_lattice;

/// Errors from the safety test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SafetyError {
    /// The dichotomy of Proposition 3.5 only covers UCQs, i.e. monotone `φ`.
    NotMonotone,
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyError::NotMonotone => write!(f, "safety dichotomy requires a monotone φ"),
        }
    }
}

impl std::error::Error for SafetyError {}

/// Safety via the Möbius criterion of Proposition 3.5: degenerate
/// functions are safe; nondegenerate ones are safe iff `µ_CNF(0̂,1̂) = 0`.
pub fn is_safe(phi: &BoolFn) -> Result<bool, SafetyError> {
    if !phi.is_monotone() {
        return Err(SafetyError::NotMonotone);
    }
    if phi.is_degenerate() {
        return Ok(true);
    }
    Ok(cnf_lattice(phi).mobius_bottom_top() == 0)
}

/// Safety via the paper's Euler-characteristic criterion
/// (Corollary 3.9): safe iff `e(φ) = 0`.
pub fn is_safe_euler(phi: &BoolFn) -> Result<bool, SafetyError> {
    if !phi.is_monotone() {
        return Err(SafetyError::NotMonotone);
    }
    Ok(phi.euler_characteristic() == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{enumerate, phi9, small, threshold_fn};

    #[test]
    fn phi9_is_safe_by_both_criteria() {
        assert_eq!(is_safe(&phi9()), Ok(true));
        assert_eq!(is_safe_euler(&phi9()), Ok(true));
    }

    #[test]
    fn the_hard_chain_query_is_unsafe() {
        // φ = 0 ∨ 1 ∨ ... ∨ k is Dalvi–Suciu's #P-hard query h_k.
        let phi = BoolFn::from_fn(4, |v| v != 0);
        assert_eq!(is_safe(&phi), Ok(false));
        assert_eq!(is_safe_euler(&phi), Ok(false));
    }

    #[test]
    fn criteria_agree_on_every_monotone_function_small_k() {
        // Corollary 3.9 == Proposition 3.5 exhaustively for k <= 3.
        for n in 1..=4u8 {
            for t in enumerate::monotone_tables(n) {
                let phi = BoolFn::from_table_u64(n, t);
                assert_eq!(
                    is_safe(&phi).unwrap(),
                    is_safe_euler(&phi).unwrap(),
                    "n={n}, t={t:#x}"
                );
                assert_eq!(
                    is_safe_euler(&phi).unwrap(),
                    small::euler(n, t) == 0,
                    "n={n}, t={t:#x}"
                );
            }
        }
    }

    #[test]
    fn non_monotone_rejected() {
        let phi = !&phi9();
        assert_eq!(is_safe(&phi), Err(SafetyError::NotMonotone));
        assert_eq!(is_safe_euler(&phi), Err(SafetyError::NotMonotone));
    }

    #[test]
    fn thresholds_classified() {
        // |ν| >= 1 on k=2 is the hard h_2; |ν| >= 3 (all three h's) is
        // also unsafe; degenerate cases are safe.
        assert_eq!(is_safe(&threshold_fn(3, 1)), Ok(false));
        assert_eq!(is_safe(&threshold_fn(3, 0)), Ok(true)); // ⊤, degenerate
    }
}
