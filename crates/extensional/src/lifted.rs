//! Lifted inference: Möbius inversion plus run-factorized closed forms.

use std::fmt;

use intext_lattice::{cnf_lattice, QueryLattice};
use intext_numeric::BigRational;
use intext_query::HQuery;
use intext_tid::{Tid, TupleDesc};

/// Errors from the extensional engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtensionalError {
    /// Extensional evaluation covers UCQs only (monotone `φ`).
    NotMonotone,
    /// The query is unsafe (`µ_CNF(0̂,1̂) ≠ 0`): `PQE` is `#P`-hard and
    /// the lifted algorithm cannot apply.
    NotSafe,
    /// Database vocabulary mismatch.
    VocabularyMismatch {
        /// `k` expected by the query.
        expected: u8,
        /// `k` of the database.
        got: u8,
    },
}

impl fmt::Display for ExtensionalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtensionalError::NotMonotone => {
                write!(f, "extensional evaluation requires a monotone φ (a UCQ)")
            }
            ExtensionalError::NotSafe => {
                write!(f, "query is unsafe: µ_CNF(0̂,1̂) ≠ 0, PQE is #P-hard")
            }
            ExtensionalError::VocabularyMismatch { expected, got } => {
                write!(f, "query is over k={expected} but database has k={got}")
            }
        }
    }
}

impl std::error::Error for ExtensionalError {}

/// Probability that a *potential* tuple is present: its TID probability
/// when it exists in the database, zero otherwise.
fn tuple_prob(tid: &Tid, t: TupleDesc) -> BigRational {
    match tid.database().tuple_id(t) {
        Some(id) => tid.prob(id).clone(),
        None => BigRational::zero(),
    }
}

/// `Pr(no two consecutive present)` over a chain of presence
/// probabilities — the inner DP of the run factorization.
fn chain_no_consecutive(probs: &[BigRational]) -> BigRational {
    // a = Pr(ok, last absent), b = Pr(ok, last present).
    let mut a = BigRational::one();
    let mut b = BigRational::zero();
    for p in probs {
        let na = &p.complement() * &(&a + &b);
        let nb = p * &a;
        a = na;
        b = nb;
    }
    &a + &b
}

/// Decomposes a set of `h`-indices (bitmask) into maximal runs of
/// consecutive indices `[i..=j]`.
fn runs(d: u32, k: u8) -> Vec<(u8, u8)> {
    let mut out = Vec::new();
    let mut i = 0u8;
    while i <= k {
        if d & (1 << i) == 0 {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < k && d & (1 << (j + 1)) != 0 {
            j += 1;
        }
        out.push((i, j));
        i = j + 1;
    }
    out
}

/// `N(d) = Pr(⋀_{j∈d} ¬h_{k,j})`: the probability that none of the
/// selected `h` queries holds, computed in closed form by independence
/// across runs and across groups (PTIME in the database).
///
/// # Panics
/// Panics if `d` contains the full run `[0..k]` (the `#P`-hard bottom
/// element — callers skip it because its Möbius coefficient is zero for
/// safe queries).
pub fn neg_h_probability(tid: &Tid, d: u32) -> BigRational {
    let db = tid.database();
    let k = db.k();
    let n = db.domain_size();
    let mut acc = BigRational::one();
    for (i, j) in runs(d, k) {
        assert!(
            !(i == 0 && j == k),
            "N(d) with the full run [0..k] is the #P-hard bottom element"
        );
        let run_prob = if i >= 1 && j < k {
            // Middle run: independent per (a, b) pair over S_i..S_{j+1}.
            let mut p = BigRational::one();
            for a in 0..n {
                for b in 0..n {
                    let chain: Vec<BigRational> = (i..=j + 1)
                        .map(|c| tuple_prob(tid, TupleDesc::S(c, a, b)))
                        .collect();
                    p = &p * &chain_no_consecutive(&chain);
                }
            }
            p
        } else if i == 0 {
            // Run [0..j], j < k: group by the x-value, condition on R(a).
            let mut p = BigRational::one();
            for a in 0..n {
                // R(a) absent: only the middle constraints S_1..S_{j+1}.
                let mut free = BigRational::one();
                // R(a) present: additionally S_1(a,b) absent for all b.
                let mut constrained = BigRational::one();
                for b in 0..n {
                    let chain: Vec<BigRational> = (1..=j + 1)
                        .map(|c| tuple_prob(tid, TupleDesc::S(c, a, b)))
                        .collect();
                    free = &free * &chain_no_consecutive(&chain);
                    let s1_absent = chain[0].complement();
                    let rest = chain_no_consecutive(&chain[1..]);
                    constrained = &constrained * &(&s1_absent * &rest);
                }
                let pr = tuple_prob(tid, TupleDesc::R(a));
                p = &p * &(&(&pr.complement() * &free) + &(&pr * &constrained));
            }
            p
        } else {
            // Run [i..k], i > 0: group by the y-value, condition on T(b).
            let mut p = BigRational::one();
            for b in 0..n {
                let mut free = BigRational::one();
                let mut constrained = BigRational::one();
                for a in 0..n {
                    let chain: Vec<BigRational> = (i..=k)
                        .map(|c| tuple_prob(tid, TupleDesc::S(c, a, b)))
                        .collect();
                    free = &free * &chain_no_consecutive(&chain);
                    let sk_absent = chain[chain.len() - 1].complement();
                    let rest = chain_no_consecutive(&chain[..chain.len() - 1]);
                    constrained = &constrained * &(&sk_absent * &rest);
                }
                let pt = tuple_prob(tid, TupleDesc::T(b));
                p = &p * &(&(&pt.complement() * &free) + &(&pt * &constrained));
            }
            p
        };
        acc = &acc * &run_prob;
    }
    acc
}

/// Extensional `PQE(Q_φ)` by lifted inference (Proposition 3.5 +
/// Appendix B.2): `Pr = Σ_{d∈L} µ(d,1̂)·N(d)`, with the `#P`-hard bottom
/// term cancelled by its zero Möbius coefficient for safe queries.
pub fn pqe_extensional(q: &HQuery, tid: &Tid) -> Result<BigRational, ExtensionalError> {
    let phi = q.phi();
    if !phi.is_monotone() {
        return Err(ExtensionalError::NotMonotone);
    }
    if tid.database().k() != q.k() {
        return Err(ExtensionalError::VocabularyMismatch {
            expected: q.k(),
            got: tid.database().k(),
        });
    }
    if phi.is_bottom() {
        // Short-circuit before building a lattice: ⊥ holds nowhere.
        return Ok(BigRational::zero());
    }
    pqe_extensional_with_lattice(q, tid, &cnf_lattice(phi))
}

/// [`pqe_extensional`] with a caller-supplied CNF lattice.
///
/// The lattice and its Möbius values depend **only on `φ`** — not on the
/// database, not on the probabilities — so a caller evaluating the same
/// query over many TIDs (the `PqeEngine`'s extensional memo, a scenario
/// batch) computes [`cnf_lattice`] once and re-runs only the per-TID
/// `N(d)` closed forms here. `lat` must be `cnf_lattice(q.phi())`; the
/// per-call safety check (`µ` at the hard bottom must vanish) still runs
/// against whatever lattice is supplied.
pub fn pqe_extensional_with_lattice(
    q: &HQuery,
    tid: &Tid,
    lat: &QueryLattice,
) -> Result<BigRational, ExtensionalError> {
    let phi = q.phi();
    if !phi.is_monotone() {
        return Err(ExtensionalError::NotMonotone);
    }
    if tid.database().k() != q.k() {
        return Err(ExtensionalError::VocabularyMismatch {
            expected: q.k(),
            got: tid.database().k(),
        });
    }
    if phi.is_bottom() {
        return Ok(BigRational::zero());
    }
    let full = (1u32 << phi.num_vars()) - 1;
    let mut acc = BigRational::zero();
    for (idx, &d) in lat.elements.iter().enumerate() {
        let mu = lat.mobius_to_top[idx];
        if mu == 0 {
            continue;
        }
        if d == full {
            // Nonzero coefficient on the hard bottom: unsafe query.
            return Err(ExtensionalError::NotSafe);
        }
        let term = neg_h_probability(tid, d);
        let mu_rat = BigRational::from_int(mu);
        acc = &acc + &(&mu_rat * &term);
    }
    Ok(acc)
}

/// `f64` wrapper around [`pqe_extensional`] (exact computation, lossy
/// conversion at the end; the rationals involved stay small).
pub fn pqe_extensional_f64(q: &HQuery, tid: &Tid) -> Result<f64, ExtensionalError> {
    pqe_extensional(q, tid).map(|p| p.to_f64())
}

/// `f64` wrapper around [`pqe_extensional_with_lattice`].
pub fn pqe_extensional_with_lattice_f64(
    q: &HQuery,
    tid: &Tid,
    lat: &QueryLattice,
) -> Result<f64, ExtensionalError> {
    pqe_extensional_with_lattice(q, tid, lat).map(|p| p.to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{enumerate, phi9, small, BoolFn};
    use intext_query::pqe_brute_force;
    use intext_tid::{complete_database, random_database, random_tid, DbGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn runs_decomposition() {
        assert_eq!(runs(0b0000, 3), vec![]);
        assert_eq!(runs(0b0001, 3), vec![(0, 0)]);
        assert_eq!(runs(0b1011, 3), vec![(0, 1), (3, 3)]);
        assert_eq!(runs(0b0110, 3), vec![(1, 2)]);
        assert_eq!(runs(0b1111, 3), vec![(0, 3)]);
    }

    #[test]
    fn chain_dp_matches_enumeration() {
        let probs: Vec<BigRational> = [1, 2, 3]
            .iter()
            .map(|&x| BigRational::from_ratio(x, 4))
            .collect();
        // Enumerate all presence patterns of the 3-chain.
        let mut expect = BigRational::zero();
        for m in 0u32..8 {
            if (m & 0b011) == 0b011 || (m & 0b110) == 0b110 {
                continue; // two consecutive present
            }
            let mut w = BigRational::one();
            for (i, p) in probs.iter().enumerate() {
                w = &w
                    * &if (m >> i) & 1 == 1 {
                        p.clone()
                    } else {
                        p.complement()
                    };
            }
            expect = &expect + &w;
        }
        assert_eq!(chain_no_consecutive(&probs), expect);
    }

    #[test]
    fn neg_h_matches_brute_force() {
        // N(d) = Pr(⋀ ¬h_j) verified against brute force for every
        // non-full d on random instances.
        let mut rng = StdRng::seed_from_u64(9);
        let db = random_database(
            &DbGenConfig {
                k: 2,
                domain_size: 2,
                density: 0.7,
                prob_denominator: 7,
            },
            &mut rng,
        );
        let tid = random_tid(db, 7, &mut rng);
        for d in 0..0b111u32 {
            // ⋀_{j∈d} ¬h_j as an H-query: φ(v) = (v ∩ d == ∅).
            let phi = BoolFn::from_fn(3, |v| v & d == 0);
            let q = HQuery::new(phi);
            let expect = pqe_brute_force(&q, &tid).unwrap();
            assert_eq!(neg_h_probability(&tid, d), expect, "d={d:#b}");
        }
    }

    #[test]
    #[should_panic(expected = "#P-hard bottom")]
    fn full_run_rejected() {
        let tid = intext_tid::uniform_tid(complete_database(2, 1), BigRational::from_ratio(1, 2));
        let _ = neg_h_probability(&tid, 0b111);
    }

    #[test]
    fn phi9_extensional_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..3 {
            let db = random_database(
                &DbGenConfig {
                    k: 3,
                    domain_size: 2,
                    density: 0.6,
                    prob_denominator: 5,
                },
                &mut rng,
            );
            let tid = random_tid(db, 5, &mut rng);
            let q = HQuery::new(phi9());
            let lifted = pqe_extensional(&q, &tid).unwrap();
            let brute = pqe_brute_force(&q, &tid).unwrap();
            assert_eq!(lifted, brute, "trial {trial}");
        }
    }

    #[test]
    fn all_safe_monotone_k2_match_brute_force() {
        // Every safe monotone function on k = 2 against ground truth.
        let mut rng = StdRng::seed_from_u64(31);
        let db = random_database(
            &DbGenConfig {
                k: 2,
                domain_size: 2,
                density: 0.8,
                prob_denominator: 6,
            },
            &mut rng,
        );
        let tid = random_tid(db, 6, &mut rng);
        let mut safe_checked = 0;
        for t in enumerate::monotone_tables(3) {
            let phi = BoolFn::from_table_u64(3, t);
            let q = HQuery::new(phi.clone());
            match pqe_extensional(&q, &tid) {
                Ok(p) => {
                    let brute = pqe_brute_force(&q, &tid).unwrap();
                    assert_eq!(p, brute, "t={t:#x}");
                    safe_checked += 1;
                }
                Err(ExtensionalError::NotSafe) => {
                    assert_ne!(small::euler(3, t), 0, "safe query rejected: {t:#x}");
                }
                Err(e) => panic!("unexpected error {e:?} for t={t:#x}"),
            }
        }
        assert!(
            safe_checked > 5,
            "only {safe_checked} safe functions checked"
        );
    }

    #[test]
    fn unsafe_query_rejected() {
        let tid = intext_tid::uniform_tid(complete_database(3, 2), BigRational::from_ratio(1, 2));
        // The hard query: all h's in one disjunction.
        let q = HQuery::new(BoolFn::from_fn(4, |v| v != 0));
        assert_eq!(
            pqe_extensional(&q, &tid).unwrap_err(),
            ExtensionalError::NotSafe
        );
    }

    #[test]
    fn non_monotone_rejected() {
        let tid = intext_tid::uniform_tid(complete_database(3, 1), BigRational::from_ratio(1, 2));
        let q = HQuery::new(!&phi9());
        assert_eq!(
            pqe_extensional(&q, &tid).unwrap_err(),
            ExtensionalError::NotMonotone
        );
    }

    #[test]
    fn constants_evaluate() {
        let tid = intext_tid::uniform_tid(complete_database(2, 2), BigRational::from_ratio(1, 3));
        assert!(pqe_extensional(&HQuery::new(BoolFn::top(3)), &tid)
            .unwrap()
            .is_one());
        assert!(pqe_extensional(&HQuery::new(BoolFn::bottom(3)), &tid)
            .unwrap()
            .is_zero());
    }
}
