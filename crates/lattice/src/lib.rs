//! Finite posets, Möbius functions, and the CNF/DNF lattices of monotone
//! Boolean functions (Monet 2020, Section 3; Dalvi–Suciu's safety test).
//!
//! The extensional algorithm for `H⁺`-queries decides safety by computing
//! the Möbius value `µ_CNF(0̂, 1̂)` of the *CNF lattice* (Definition 3.4):
//! the poset of all unions of minimized-CNF clauses under reversed
//! inclusion. Lemma 3.8 — the paper's reformulation — states that for a
//! nondegenerate monotone function this value equals the Euler
//! characteristic, and `(-1)^k` times the DNF-lattice value. This crate
//! builds both lattices, computes Möbius functions on arbitrary finite
//! posets, verifies the lemma, and implements the characteristic
//! polynomials of Lemma B.5 that its proof goes through.

mod charpoly;
mod poset;
mod query_lattice;

pub use charpoly::{p_cnf, p_dnf, p_phi, Polynomial};
pub use poset::{Poset, PosetError};
pub use query_lattice::{cnf_lattice, dnf_lattice, render_hasse, QueryLattice};

use intext_boolfn::BoolFn;

/// The three quantities related by Lemma 3.8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MobiusEuler {
    /// `e(phi)` (Definition 2.2).
    pub euler: i64,
    /// `µ_CNF(0̂, 1̂)` of the CNF lattice.
    pub mobius_cnf: i64,
    /// `µ_DNF(0̂, 1̂)` of the DNF lattice.
    pub mobius_dnf: i64,
}

/// Computes the Euler characteristic and both lattice Möbius values of a
/// monotone function. For nondegenerate input, Lemma 3.8 guarantees
/// `euler == mobius_cnf == (-1)^k * mobius_dnf`.
///
/// # Panics
/// Panics if `phi` is not monotone.
pub fn mobius_euler(phi: &BoolFn) -> MobiusEuler {
    MobiusEuler {
        euler: phi.euler_characteristic(),
        mobius_cnf: cnf_lattice(phi).mobius_bottom_top(),
        mobius_dnf: dnf_lattice(phi).mobius_bottom_top(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{enumerate, phi9, small, threshold_fn, BoolFn};

    #[test]
    fn lemma_3_8_on_phi9() {
        let me = mobius_euler(&phi9());
        assert_eq!(me.euler, 0);
        assert_eq!(me.mobius_cnf, 0);
        assert_eq!(me.mobius_dnf, 0);
    }

    #[test]
    fn lemma_3_8_exhaustive_small_k() {
        // For every nondegenerate monotone function on k+1 <= 5 variables:
        // e(phi) = µ_CNF(0̂,1̂) = (-1)^k µ_DNF(0̂,1̂).
        for n in 2..=5u8 {
            let k = n - 1;
            let sign = if k % 2 == 0 { 1 } else { -1 };
            let mut checked = 0u32;
            for t in enumerate::monotone_tables(n) {
                if small::is_degenerate(n, t) {
                    continue;
                }
                let phi = BoolFn::from_table_u64(n, t);
                let me = mobius_euler(&phi);
                assert_eq!(me.euler, me.mobius_cnf, "CNF side, n={n}, t={t:#x}");
                assert_eq!(me.euler, sign * me.mobius_dnf, "DNF side, n={n}, t={t:#x}");
                checked += 1;
            }
            assert!(
                checked > 0,
                "no nondegenerate monotone functions found for n={n}"
            );
        }
    }

    #[test]
    fn degenerate_functions_have_zero_euler() {
        // Used by Corollary 3.9: degenerate => e = 0 (so the e-criterion
        // subsumes Prop 3.5's degenerate case).
        for t in enumerate::monotone_tables(4) {
            if small::is_degenerate(4, t) {
                assert_eq!(small::euler(4, t), 0, "t={t:#x}");
            }
        }
    }

    #[test]
    fn thresholds_mobius_matches_euler() {
        for t in 1..=4u32 {
            let phi = threshold_fn(4, t);
            if phi.is_degenerate() {
                continue;
            }
            let me = mobius_euler(&phi);
            assert_eq!(me.euler, me.mobius_cnf, "threshold t={t}");
        }
    }
}
