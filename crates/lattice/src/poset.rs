//! Generic finite posets and their Möbius functions.

use std::fmt;

/// Errors raised when a relation fails the partial-order axioms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PosetError {
    /// `u <= u` fails for the reported element.
    NotReflexive(usize),
    /// `u <= v` and `v <= u` for distinct `u`, `v`.
    NotAntisymmetric(usize, usize),
    /// `u <= v <= w` but not `u <= w`.
    NotTransitive(usize, usize, usize),
}

impl fmt::Display for PosetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PosetError::NotReflexive(u) => write!(f, "relation not reflexive at {u}"),
            PosetError::NotAntisymmetric(u, v) => {
                write!(f, "relation not antisymmetric at ({u}, {v})")
            }
            PosetError::NotTransitive(u, v, w) => {
                write!(f, "relation not transitive at ({u}, {v}, {w})")
            }
        }
    }
}

impl std::error::Error for PosetError {}

/// A finite poset on elements `0..len`, stored as a dense `<=` matrix.
#[derive(Clone, Debug)]
pub struct Poset {
    len: usize,
    /// Row-major: `leq[u * len + v]` iff `u <= v`.
    leq: Vec<bool>,
}

impl Poset {
    /// Builds a poset from a comparison predicate, validating the axioms.
    pub fn new(len: usize, leq_fn: impl Fn(usize, usize) -> bool) -> Result<Self, PosetError> {
        let mut leq = vec![false; len * len];
        for u in 0..len {
            for v in 0..len {
                leq[u * len + v] = leq_fn(u, v);
            }
        }
        let p = Poset { len, leq };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), PosetError> {
        for u in 0..self.len {
            if !self.leq(u, u) {
                return Err(PosetError::NotReflexive(u));
            }
        }
        for u in 0..self.len {
            for v in 0..self.len {
                if u != v && self.leq(u, v) && self.leq(v, u) {
                    return Err(PosetError::NotAntisymmetric(u, v));
                }
            }
        }
        for u in 0..self.len {
            for v in 0..self.len {
                if !self.leq(u, v) {
                    continue;
                }
                for w in 0..self.len {
                    if self.leq(v, w) && !self.leq(u, w) {
                        return Err(PosetError::NotTransitive(u, v, w));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the poset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The order relation.
    pub fn leq(&self, u: usize, v: usize) -> bool {
        self.leq[u * self.len + v]
    }

    /// Strict order `u < v`.
    pub fn lt(&self, u: usize, v: usize) -> bool {
        u != v && self.leq(u, v)
    }

    /// The greatest element, if one exists.
    pub fn top(&self) -> Option<usize> {
        (0..self.len).find(|&t| (0..self.len).all(|u| self.leq(u, t)))
    }

    /// The least element, if one exists.
    pub fn bottom(&self) -> Option<usize> {
        (0..self.len).find(|&b| (0..self.len).all(|u| self.leq(b, u)))
    }

    /// The Möbius function `µ(u, v)` for all `u` at a fixed `v`
    /// (Stanley; Section 2 of the paper): `µ(v, v) = 1` and
    /// `µ(u, v) = -Σ_{u < w <= v} µ(w, v)`.
    ///
    /// Returns `None` at positions `u` with `u ≰ v` (where µ is undefined).
    pub fn mobius_to(&self, v: usize) -> Vec<Option<i64>> {
        let mut mu: Vec<Option<i64>> = vec![None; self.len];
        // Process elements of the down-set of v from v downward: order by
        // the size of the interval [u, v] (smaller interval first), which
        // is a linear extension of the reversed order on [0̂, v].
        let mut order: Vec<usize> = (0..self.len).filter(|&u| self.leq(u, v)).collect();
        order.sort_by_key(|&u| {
            (0..self.len)
                .filter(|&w| self.leq(u, w) && self.leq(w, v))
                .count()
        });
        for &u in &order {
            if u == v {
                mu[u] = Some(1);
                continue;
            }
            let mut sum = 0i64;
            #[allow(clippy::needless_range_loop)] // w indexes both the relation and mu
            for w in 0..self.len {
                if w != u && self.lt(u, w) && self.leq(w, v) {
                    sum += mu[w].expect("interval order guarantees µ(w, v) is ready");
                }
            }
            mu[u] = Some(-sum);
        }
        mu
    }

    /// A single Möbius value `µ(u, v)`; `None` when `u ≰ v`.
    pub fn mobius_pair(&self, u: usize, v: usize) -> Option<i64> {
        self.mobius_to(v)[u]
    }

    /// The least upper bound of `u` and `v`, if it exists.
    pub fn join(&self, u: usize, v: usize) -> Option<usize> {
        let uppers: Vec<usize> = (0..self.len)
            .filter(|&w| self.leq(u, w) && self.leq(v, w))
            .collect();
        uppers
            .iter()
            .copied()
            .find(|&m| uppers.iter().all(|&w| self.leq(m, w)))
    }

    /// The greatest lower bound of `u` and `v`, if it exists.
    pub fn meet(&self, u: usize, v: usize) -> Option<usize> {
        let lowers: Vec<usize> = (0..self.len)
            .filter(|&w| self.leq(w, u) && self.leq(w, v))
            .collect();
        lowers
            .iter()
            .copied()
            .find(|&m| lowers.iter().all(|&w| self.leq(w, m)))
    }

    /// Is the poset a lattice (every pair has a meet and a join)?
    /// Definition 3.4 remarks that `L^φ_CNF` is one; this checks it.
    pub fn is_lattice(&self) -> bool {
        (0..self.len)
            .all(|u| (u..self.len).all(|v| self.join(u, v).is_some() && self.meet(u, v).is_some()))
    }

    /// Cover relations `(u, v)` with `u < v` and no element in between —
    /// the edges of the Hasse diagram.
    pub fn hasse_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.len {
            for v in 0..self.len {
                if self.lt(u, v) && !(0..self.len).any(|w| self.lt(u, w) && self.lt(w, v)) {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boolean lattice on subsets of {0,1,2} (8 elements), ordered by ⊆.
    fn boolean_lattice() -> Poset {
        Poset::new(8, |u, v| u & !v == 0).expect("valid poset")
    }

    #[test]
    fn validation_rejects_bad_relations() {
        assert_eq!(
            Poset::new(2, |_, _| false).unwrap_err(),
            PosetError::NotReflexive(0)
        );
        assert_eq!(
            Poset::new(2, |_, _| true).unwrap_err(),
            PosetError::NotAntisymmetric(0, 1)
        );
        // 0 <= 1 <= 2 but 0 ≰ 2.
        let r = |u: usize, v: usize| u == v || (u == 0 && v == 1) || (u == 1 && v == 2);
        assert_eq!(
            Poset::new(3, r).unwrap_err(),
            PosetError::NotTransitive(0, 1, 2)
        );
    }

    #[test]
    fn boolean_lattice_mobius_is_signed_inclusion() {
        // µ(u, v) = (-1)^{|v \ u|} on the subset lattice.
        let p = boolean_lattice();
        let top = 0b111usize;
        let mu = p.mobius_to(top);
        #[allow(clippy::needless_range_loop)] // u is both a set and an index
        for u in 0..8usize {
            let diff = (top & !u).count_ones();
            let expect = if diff.is_multiple_of(2) { 1 } else { -1 };
            assert_eq!(mu[u], Some(expect), "u={u:#b}");
        }
    }

    #[test]
    fn mobius_undefined_outside_downset() {
        let p = boolean_lattice();
        let mu = p.mobius_to(0b011);
        assert_eq!(mu[0b100], None);
        assert_eq!(mu[0b011], Some(1));
    }

    #[test]
    fn mobius_inversion_delta_identity() {
        // Σ_{y <= u <= x} µ(u, x) = [y = x].
        let p = boolean_lattice();
        for x in 0..8usize {
            let mu = p.mobius_to(x);
            for y in 0..8usize {
                if !p.leq(y, x) {
                    continue;
                }
                let total: i64 = (0..8)
                    .filter(|&u| p.leq(y, u) && p.leq(u, x))
                    .map(|u| mu[u].expect("in interval"))
                    .sum();
                assert_eq!(total, i64::from(y == x), "y={y}, x={x}");
            }
        }
    }

    #[test]
    fn top_bottom_and_hasse() {
        let p = boolean_lattice();
        assert_eq!(p.top(), Some(0b111));
        assert_eq!(p.bottom(), Some(0));
        let hasse = p.hasse_edges();
        // Hypercube edges: 3 * 2^2 = 12.
        assert_eq!(hasse.len(), 12);
        for (u, v) in hasse {
            assert_eq!((u ^ v).count_ones(), 1, "cover edges flip one bit");
        }
    }

    #[test]
    fn boolean_lattice_is_a_lattice_with_set_ops() {
        let p = boolean_lattice();
        assert!(p.is_lattice());
        assert_eq!(p.join(0b001, 0b010), Some(0b011));
        assert_eq!(p.meet(0b011, 0b110), Some(0b010));
    }

    #[test]
    fn antichain_pair_is_not_a_lattice() {
        // Two incomparable elements with no bounds at all.
        let p = Poset::new(2, |u, v| u == v).expect("valid");
        assert!(!p.is_lattice());
        assert_eq!(p.join(0, 1), None);
    }

    #[test]
    fn chain_mobius() {
        // Chain 0 < 1 < 2 < 3: µ(u, v) is 1 on equality, -1 on covers, 0 else.
        let p = Poset::new(4, |u, v| u <= v).expect("chain");
        let mu = p.mobius_to(3);
        assert_eq!(mu, vec![Some(0), Some(0), Some(-1), Some(1)]);
    }
}
