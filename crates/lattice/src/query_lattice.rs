//! The CNF and DNF lattices of a monotone Boolean function
//! (Definition 3.4 of the paper; Figure 2 shows `L^φ9_CNF`).

use intext_boolfn::{BoolFn, Valuation};

use crate::Poset;

/// The CNF (or DNF) lattice of a monotone function: the distinct unions
/// `d_s = ∪_{i∈s} C_i` of minimized clauses, ordered by **reversed**
/// inclusion (so `1̂ = ∅` and `0̂ = DEP(phi)` for nondegenerate `phi`).
#[derive(Clone, Debug)]
pub struct QueryLattice {
    /// The clause sets the lattice was generated from (variable bitmasks).
    pub clauses: Vec<u32>,
    /// Element `i` is the union `d_i` (variable bitmask); sorted by
    /// (popcount, value), so index 0 is always `∅ = 1̂`.
    pub elements: Vec<u32>,
    /// The order: `u <= v` iff `elements[u] ⊇ elements[v]`.
    pub poset: Poset,
    /// `µ(u, 1̂)` for every element (all are `<= 1̂ = ∅`).
    pub mobius_to_top: Vec<i64>,
}

impl QueryLattice {
    fn build(clauses: Vec<u32>) -> QueryLattice {
        // Closure of {∅} under union with single clauses = all unions d_s.
        let mut elements: Vec<u32> = vec![0];
        let mut seen = std::collections::HashSet::from([0u32]);
        let mut frontier = vec![0u32];
        while let Some(d) = frontier.pop() {
            for &c in &clauses {
                let u = d | c;
                if seen.insert(u) {
                    elements.push(u);
                    frontier.push(u);
                }
            }
        }
        elements.sort_unstable_by_key(|&d| (d.count_ones(), d));
        let poset = Poset::new(elements.len(), |u, v| {
            // Reversed inclusion: d_u ⊇ d_v.
            elements[v] & !elements[u] == 0
        })
        .expect("reversed inclusion is a partial order");
        let top = poset.top().expect("∅ is the greatest element");
        debug_assert_eq!(elements[top], 0);
        let mobius_to_top = poset
            .mobius_to(top)
            .into_iter()
            .map(|m| m.expect("every element is <= 1̂"))
            .collect();
        QueryLattice {
            clauses,
            elements,
            poset,
            mobius_to_top,
        }
    }

    /// Index of the greatest element `1̂ = ∅`.
    pub fn top(&self) -> usize {
        0
    }

    /// Index of the least element `0̂` (the union of all clauses).
    pub fn bottom(&self) -> usize {
        self.poset
            .bottom()
            .expect("the union of all clauses is least")
    }

    /// The safety quantity `µ(0̂, 1̂)` (Proposition 3.5).
    pub fn mobius_bottom_top(&self) -> i64 {
        self.mobius_to_top[self.bottom()]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` iff the lattice is trivial (single element).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

/// Builds the CNF lattice `L^phi_CNF` (Definition 3.4) from the unique
/// minimized CNF of a monotone function.
///
/// # Panics
/// Panics if `phi` is not monotone.
pub fn cnf_lattice(phi: &BoolFn) -> QueryLattice {
    QueryLattice::build(phi.monotone_cnf())
}

/// Builds the DNF lattice (footnote 4) from the unique minimized DNF.
///
/// # Panics
/// Panics if `phi` is not monotone.
pub fn dnf_lattice(phi: &BoolFn) -> QueryLattice {
    QueryLattice::build(phi.monotone_dnf())
}

/// Renders the Hasse diagram of a lattice with its Möbius values, layer by
/// layer — the textual analogue of the paper's Figure 2.
pub fn render_hasse(lat: &QueryLattice) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut by_size: Vec<Vec<usize>> = Vec::new();
    for (i, &d) in lat.elements.iter().enumerate() {
        let s = d.count_ones() as usize;
        if by_size.len() <= s {
            by_size.resize(s + 1, Vec::new());
        }
        by_size[s].push(i);
    }
    for layer in &by_size {
        if layer.is_empty() {
            continue;
        }
        let row: Vec<String> = layer
            .iter()
            .map(|&i| {
                format!(
                    "{} [µ={}]",
                    Valuation(lat.elements[i]),
                    lat.mobius_to_top[i]
                )
            })
            .collect();
        writeln!(out, "{}", row.join("   ")).expect("write to String");
    }
    let covers = lat.poset.hasse_edges();
    writeln!(
        out,
        "covers (lower ⋖ upper in reversed inclusion): {}",
        covers.len()
    )
    .expect("write to String");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::phi9;

    #[test]
    fn phi9_cnf_lattice_matches_figure_2() {
        // Figure 2: nine elements; µ values per node; µ(0̂, 1̂) = 0.
        let lat = cnf_lattice(&phi9());
        assert_eq!(lat.len(), 9);
        let find = |d: u32| {
            lat.elements
                .iter()
                .position(|&e| e == d)
                .unwrap_or_else(|| panic!("element {d:#b} missing"))
        };
        let expect: [(u32, i64); 9] = [
            (0b0000, 1),  // ∅ = 1̂
            (0b0111, -1), // {0,1,2}
            (0b1001, -1), // {0,3}
            (0b1011, 1),  // {0,1,3}
            (0b1010, -1), // {1,3}
            (0b1101, 1),  // {0,2,3}
            (0b1100, -1), // {2,3}
            (0b1110, 1),  // {1,2,3}
            (0b1111, 0),  // {0,1,2,3} = 0̂
        ];
        for (d, mu) in expect {
            assert_eq!(lat.mobius_to_top[find(d)], mu, "µ at {d:#b}");
        }
        assert_eq!(lat.mobius_bottom_top(), 0);
        assert_eq!(lat.elements[lat.top()], 0);
        assert_eq!(lat.elements[lat.bottom()], 0b1111);
    }

    #[test]
    fn phi9_dnf_lattice_value() {
        // Lemma 3.8 with k = 3: µ_DNF(0̂,1̂) = (-1)^3 e(phi9) = 0.
        let lat = dnf_lattice(&phi9());
        assert_eq!(lat.mobius_bottom_top(), 0);
    }

    #[test]
    fn single_clause_function_lattice() {
        // phi = x0 ∨ x1 on 2 vars: one CNF clause {0,1}; lattice = {∅, {0,1}}.
        let phi = BoolFn::from_fn(2, |v| v != 0);
        let lat = cnf_lattice(&phi);
        assert_eq!(lat.elements, vec![0b00, 0b11]);
        assert_eq!(lat.mobius_bottom_top(), -1);
    }

    #[test]
    fn hasse_rendering_mentions_every_element() {
        let lat = cnf_lattice(&phi9());
        let s = render_hasse(&lat);
        for &d in &lat.elements {
            assert!(
                s.contains(&Valuation(d).to_string()),
                "missing {d:#b} in:\n{s}"
            );
        }
    }

    #[test]
    fn cnf_and_dnf_lattices_really_are_lattices() {
        // Definition 3.4's remark, checked for the running example and a
        // threshold function.
        assert!(cnf_lattice(&phi9()).poset.is_lattice());
        assert!(dnf_lattice(&phi9()).poset.is_lattice());
        let thr = intext_boolfn::threshold_fn(4, 2);
        assert!(cnf_lattice(&thr).poset.is_lattice());
    }

    #[test]
    fn duplicate_unions_are_merged() {
        // For phi = (0∨1) ∧ (1∨2), d_{0,1} = {0,1,2} just like the union
        // of all clauses; the lattice must deduplicate.
        let phi = BoolFn::from_fn(3, |v| (v & 0b011 != 0) && (v & 0b110 != 0));
        let lat = cnf_lattice(&phi);
        assert_eq!(lat.elements, vec![0b000, 0b011, 0b110, 0b111]);
    }
}
