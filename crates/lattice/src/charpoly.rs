//! The characteristic polynomials of Lemma B.5.
//!
//! For a nondegenerate monotone `phi` on `V = {0..k}`, the probability of
//! `phi` under the uniform assignment `π_t` (every variable true with
//! probability `t`) is a polynomial `P_phi(t)`, and the Möbius inversion
//! formula applied to the CNF and DNF lattices yields two alternative
//! expressions `P_CNF` and `P_DNF`. Lemma B.5 proves the three are equal;
//! comparing leading coefficients then gives Lemma 3.8
//! (`e(phi) = µ_CNF(0̂,1̂) = (-1)^k µ_DNF(0̂,1̂)`).

use intext_boolfn::BoolFn;
use intext_numeric::BigRational;

use crate::{cnf_lattice, dnf_lattice};

/// A dense univariate polynomial with integer coefficients
/// (`coeffs[i]` multiplies `t^i`; no trailing zeros).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial {
    coeffs: Vec<i64>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: i64) -> Self {
        Polynomial::from_coeffs(vec![c])
    }

    /// Builds from coefficients (`coeffs[i]` multiplies `t^i`).
    pub fn from_coeffs(mut coeffs: Vec<i64>) -> Self {
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Polynomial { coeffs }
    }

    /// The coefficients, lowest degree first.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficient of `t^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> i64 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let len = self.coeffs.len().max(other.coeffs.len());
        Polynomial::from_coeffs((0..len).map(|i| self.coeff(i) + other.coeff(i)).collect())
    }

    /// Product.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.coeffs.is_empty() || other.coeffs.is_empty() {
            return Polynomial::zero();
        }
        let mut out = vec![0i64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::from_coeffs(out)
    }

    /// Scalar multiple.
    pub fn scale(&self, c: i64) -> Polynomial {
        Polynomial::from_coeffs(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// `(1 - t)^m`.
    pub fn one_minus_t_pow(m: u32) -> Polynomial {
        let base = Polynomial::from_coeffs(vec![1, -1]);
        let mut acc = Polynomial::constant(1);
        for _ in 0..m {
            acc = acc.mul(&base);
        }
        acc
    }

    /// `t^m`.
    pub fn t_pow(m: u32) -> Polynomial {
        let mut coeffs = vec![0i64; m as usize + 1];
        coeffs[m as usize] = 1;
        Polynomial::from_coeffs(coeffs)
    }

    /// Exact evaluation at a rational point (Horner).
    pub fn eval(&self, t: &BigRational) -> BigRational {
        let mut acc = BigRational::zero();
        for &c in self.coeffs.iter().rev() {
            acc = &(&acc * t) + &BigRational::from_int(c);
        }
        acc
    }
}

/// `P_phi(t) = Pr(phi, π_t) = Σ_{ν |= phi} t^{|ν|} (1-t)^{n-|ν|}`.
pub fn p_phi(phi: &BoolFn) -> Polynomial {
    let n = u32::from(phi.num_vars());
    // Group satisfying valuations by size.
    let mut count_by_size = vec![0i64; n as usize + 1];
    for v in phi.sat_iter() {
        count_by_size[v.count_ones() as usize] += 1;
    }
    let mut acc = Polynomial::zero();
    for (s, &c) in count_by_size.iter().enumerate() {
        if c != 0 {
            let term = Polynomial::t_pow(s as u32)
                .mul(&Polynomial::one_minus_t_pow(n - s as u32))
                .scale(c);
            acc = acc.add(&term);
        }
    }
    acc
}

/// `P_CNF(t) = Σ_{x = d_s ∈ L_CNF} µ(x, 1̂) (1-t)^{|d_s|}` (Definition B.4).
///
/// # Panics
/// Panics if `phi` is not monotone.
pub fn p_cnf(phi: &BoolFn) -> Polynomial {
    let lat = cnf_lattice(phi);
    let mut acc = Polynomial::zero();
    for (i, &d) in lat.elements.iter().enumerate() {
        let mu = lat.mobius_to_top[i];
        if mu != 0 {
            acc = acc.add(&Polynomial::one_minus_t_pow(d.count_ones()).scale(mu));
        }
    }
    acc
}

/// `P_DNF(t) = 1 - Σ_{x = d'_s ∈ L_DNF} µ(x, 1̂) t^{|d'_s|}` (Definition B.4).
///
/// # Panics
/// Panics if `phi` is not monotone.
pub fn p_dnf(phi: &BoolFn) -> Polynomial {
    let lat = dnf_lattice(phi);
    let mut acc = Polynomial::constant(1);
    for (i, &d) in lat.elements.iter().enumerate() {
        let mu = lat.mobius_to_top[i];
        if mu != 0 {
            acc = acc.add(&Polynomial::t_pow(d.count_ones()).scale(-mu));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use intext_boolfn::{enumerate, phi9, small};

    #[test]
    fn polynomial_arithmetic() {
        let p = Polynomial::from_coeffs(vec![1, 2]); // 1 + 2t
        let q = Polynomial::from_coeffs(vec![0, 0, 3]); // 3t^2
        assert_eq!(p.add(&q).coeffs(), &[1, 2, 3]);
        assert_eq!(p.mul(&q).coeffs(), &[0, 0, 3, 6]);
        assert_eq!(p.scale(-2).coeffs(), &[-2, -4]);
        assert_eq!(Polynomial::from_coeffs(vec![0, 0]).degree(), None);
    }

    #[test]
    fn one_minus_t_pow_expands_binomially() {
        assert_eq!(Polynomial::one_minus_t_pow(0).coeffs(), &[1]);
        assert_eq!(Polynomial::one_minus_t_pow(3).coeffs(), &[1, -3, 3, -1]);
    }

    #[test]
    fn eval_horner_exact() {
        let p = Polynomial::from_coeffs(vec![1, -3, 3, -1]); // (1 - t)^3
        let t = BigRational::from_ratio(1, 3);
        assert_eq!(p.eval(&t), BigRational::from_ratio(8, 27));
    }

    #[test]
    fn p_phi_at_half_counts_models() {
        // Pr under π_{1/2} = #phi / 2^n.
        let p = p_phi(&phi9());
        let half = BigRational::from_ratio(1, 2);
        assert_eq!(p.eval(&half), BigRational::from_ratio(8, 16));
    }

    #[test]
    fn lemma_b5_on_phi9() {
        let phi = phi9();
        let p = p_phi(&phi);
        assert_eq!(p, p_cnf(&phi), "P_phi = P_CNF");
        assert_eq!(p, p_dnf(&phi), "P_phi = P_DNF");
    }

    #[test]
    fn lemma_b5_exhaustive_small_k() {
        for n in 2..=4u8 {
            for t in enumerate::monotone_tables(n) {
                if small::is_degenerate(n, t) {
                    continue;
                }
                let phi = intext_boolfn::BoolFn::from_table_u64(n, t);
                let p = p_phi(&phi);
                assert_eq!(p, p_cnf(&phi), "CNF n={n} t={t:#x}");
                assert_eq!(p, p_dnf(&phi), "DNF n={n} t={t:#x}");
            }
        }
    }

    #[test]
    fn leading_coefficients_give_lemma_3_8() {
        // [t^n] P_phi = (-1)^n e(phi); [t^n] P_CNF = (-1)^n µ_CNF(0̂,1̂).
        let phi = phi9();
        let n = usize::from(phi.num_vars());
        let sign = if n % 2 == 0 { 1 } else { -1 };
        assert_eq!(p_phi(&phi).coeff(n), sign * phi.euler_characteristic());
    }
}
