//! `intext` — intensional vs extensional probabilistic query evaluation.
//!
//! A from-scratch Rust reproduction of Mikaël Monet, *"Solving a Special
//! Case of the Intensional vs Extensional Conjecture in Probabilistic
//! Databases"* (PODS 2020): probabilistic query evaluation for the
//! `H`-queries over tuple-independent databases, by **both** competing
//! approaches —
//!
//! * the **extensional** route ([`extensional`]): Dalvi–Suciu lifted
//!   inference with Möbius inversion over the CNF lattice, and
//! * the **intensional** route ([`core`]): the paper's new technique
//!   compiling the query lineage into a deterministic decomposable
//!   circuit (d-D) in polynomial time whenever the defining Boolean
//!   function has zero Euler characteristic — which covers *all safe
//!   `H⁺`-queries* and shows that inclusion–exclusion can be simulated
//!   with determinism, decomposability and negation alone.
//!
//! The front door is [`engine::PqeEngine`], and it accepts any
//! [`query::Query`] — an `H`-query built from `φ`, or a **UCQ parsed
//! from text** over a named vocabulary ([`Query::parse`]). H-shaped
//! queries (including parsed text *recognized* as H-shaped) classify on
//! the paper's Figure 1 region map and route to the cheapest sound
//! backend (OBDD, d-D pipeline, lifted inference, or brute force);
//! general queries split on the Dalvi–Suciu safety test — safe ones get
//! a lifted PTIME plan, unsafe ones ground to a lineage OBDD within a
//! budget (DESIGN.md §11). Compiled lineage artifacts are cached so
//! probability re-weightings are linear circuit walks instead of
//! recompilations. For long-lived deployments,
//!
//! [`Query::parse`]: query::Query::parse
//! [`serve`] puts one engine behind a concurrent front door — bounded
//! admission queue, worker pool evaluating over shared artifacts, typed
//! backpressure, and a length-prefixed socket protocol — with answers
//! bit-identical to calling the engine directly (see the `intext-serve`
//! binary).
//!
//! # Quickstart
//!
//! ```
//! use intext::boolfn::phi9;
//! use intext::core::compile_dd;
//! use intext::engine::{Plan, PqeEngine};
//! use intext::extensional::pqe_extensional;
//! use intext::numeric::BigRational;
//! use intext::query::{pqe_brute_force, HQuery, Query};
//! use intext::tid::{complete_database, uniform_tid, Vocabulary};
//!
//! // Open with a *parsed* query: any UCQ text over a named vocabulary
//! // (two unary relations + k binary ones). This one is Dalvi–Suciu
//! // safe but not H-shaped, so the planner gives it a lifted PTIME
//! // plan; the unsafe variant would ground to a lineage OBDD instead.
//! let voc = Vocabulary::new(
//!     vec!["Author".into(), "Cited".into()],
//!     vec!["Wrote".into()],
//! ).unwrap();
//! let parsed = Query::parse("Wrote(0,y), Cited(y)", &voc).unwrap();
//! let papers = uniform_tid(complete_database(1, 2), BigRational::from_ratio(1, 2));
//! let mut engine = PqeEngine::new();
//! assert_eq!(engine.plan(&parsed, &papers), Ok(Plan::Lifted));
//! engine.evaluate(&parsed, &papers).unwrap();
//! assert_eq!(engine.stats().lifted_plans, 1);
//!
//! // Dalvi–Suciu's q9 on a complete database, every tuple with Pr = 1/2.
//! let tid = uniform_tid(complete_database(3, 2), BigRational::from_ratio(1, 2));
//! let q = HQuery::new(phi9());
//!
//! // Front door: the engine classifies φ9 (safe, e(φ9) = 0), compiles a
//! // d-D lineage (Theorem 5.2), caches it, and evaluates bottom-up.
//! let mut engine = PqeEngine::new();
//! assert_eq!(engine.plan(&q, &tid), Ok(Plan::DdCircuit));
//! let p = engine.evaluate(&q, &tid).unwrap();
//!
//! // Equivalence demo: the three underlying routes agree bit-for-bit.
//! let ext = pqe_extensional(&q, &tid).unwrap();
//! let dd = compile_dd(&phi9(), tid.database()).unwrap();
//! let brute = pqe_brute_force(&q, &tid).unwrap();
//! assert_eq!(p, ext);
//! assert_eq!(p, dd.probability_exact(&tid));
//! assert_eq!(p, brute);
//!
//! // Scenario sweeps reuse the compiled circuit: shard a re-weighting
//! // workload across 4 worker threads, one compile for the whole batch.
//! let scenarios = vec![tid.clone(), tid.clone(), tid.clone(), tid.clone()];
//! let probs = engine.evaluate_batch_sharded(&q, &scenarios, 4).unwrap();
//! assert!(probs.iter().all(|pi| pi == &p));
//! assert_eq!(engine.stats().cache_misses, 1); // compiled exactly once
//!
//! // f64 batches go through the lane-batched kernel: one circuit walk
//! // per 8 scenarios, bit-identical to a per-scenario loop, with the
//! // time split into compiling vs walking (`compile_nanos`/`walk_nanos`).
//! let f64s = engine.evaluate_batch_f64(&q, &scenarios).unwrap();
//! assert_eq!(f64s.len(), 4);
//! assert_eq!(engine.stats().lane_kernel_calls, 1); // 4 scenarios, 1 walk
//! assert!(engine.stats().walk_nanos > 0);
//!
//! // Bound the artifact cache (total gates retained); LRU eviction keeps
//! // it under budget and counts into `stats().cache_evictions`.
//! engine.set_cache_budget(Some(1 << 20));
//!
//! // Persist the compiled circuits (versioned format, DESIGN.md §5) and
//! // warm-start a replica: zero compiles, bit-identical answers.
//! let snapshot = engine.save_cache();
//! let mut replica = PqeEngine::new();
//! replica.load_cache(&snapshot).unwrap();
//! assert_eq!(replica.evaluate(&q, &tid).unwrap(), p);
//! assert_eq!(replica.stats().cache_misses, 0); // loaded, never compiled
//!
//! // Live updates patch the cached artifact instead of recompiling:
//! // removing a tuple contracts the compiled lineage in place, and
//! // re-inserting extends it back — bit-identical to fresh compiles
//! // at every step (DESIGN.md §9).
//! use intext::tid::TupleId;
//! let mut live = tid.clone();
//! let (desc, p0) = engine.remove_tuple(&mut live, TupleId(0)).unwrap();
//! let without = engine.evaluate(&q, &live).unwrap();
//! assert_eq!(without, pqe_brute_force(&q, &live).unwrap());
//! engine.insert_tuple(&mut live, desc, p0).unwrap();
//! assert_eq!(engine.evaluate(&q, &live).unwrap(), p); // same tuples back
//! assert_eq!(engine.stats().cache_misses, 1); // still just the warm-up
//! assert!(engine.stats().patches_applied >= 2); // patched, never recompiled
//!
//! // The hard region gets an anytime answer: enable sampling, and a
//! // #P-hard query past the brute-force budget (2^40 worlds here)
//! // returns an (ε, δ)-bounded Monte-Carlo estimate instead of
//! // refusing (DESIGN.md §7). Same seed ⟹ same bits, every time.
//! use intext::boolfn::BoolFn;
//! use intext::engine::{EngineConfig, SamplingConfig};
//! let hard = HQuery::new(BoolFn::from_fn(3, |v| v != 0)); // e(φ) ≠ 0
//! let big = uniform_tid(complete_database(2, 4), BigRational::from_ratio(1, 4));
//! let mut sampler = PqeEngine::with_config(EngineConfig {
//!     sampling: Some(SamplingConfig { eps: 0.02, delta: 1e-3, ..SamplingConfig::default() }),
//!     ..EngineConfig::default()
//! });
//! let est = sampler.estimate(&hard, &big).unwrap(); // Karp–Luby DNF sampling
//! assert!(est.samples > 0 && est.eps == 0.02 && est.value <= 1.0);
//! let why = sampler.explain(&hard, &big).to_string();
//! assert!(why.contains("Karp-Luby") && why.contains("sampling chosen"));
//! ```
//!
//! See `DESIGN.md` (repo root) for the paper-to-module map and the
//! engine routing diagram, and `EXPERIMENTS.md` for what each benchmark
//! measures and how to run it.

pub use intext_boolfn as boolfn;
pub use intext_circuits as circuits;
pub use intext_core as core;
pub use intext_engine as engine;
pub use intext_extensional as extensional;
pub use intext_lattice as lattice;
pub use intext_lineage as lineage;
pub use intext_matching as matching;
pub use intext_numeric as numeric;
pub use intext_query as query;
pub use intext_serve as serve;
pub use intext_tid as tid;
