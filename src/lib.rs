//! `intext` — intensional vs extensional probabilistic query evaluation.
//!
//! A from-scratch Rust reproduction of Mikaël Monet, *"Solving a Special
//! Case of the Intensional vs Extensional Conjecture in Probabilistic
//! Databases"* (PODS 2020): probabilistic query evaluation for the
//! `H`-queries over tuple-independent databases, by **both** competing
//! approaches —
//!
//! * the **extensional** route ([`extensional`]): Dalvi–Suciu lifted
//!   inference with Möbius inversion over the CNF lattice, and
//! * the **intensional** route ([`core`]): the paper's new technique
//!   compiling the query lineage into a deterministic decomposable
//!   circuit (d-D) in polynomial time whenever the defining Boolean
//!   function has zero Euler characteristic — which covers *all safe
//!   `H⁺`-queries* and shows that inclusion–exclusion can be simulated
//!   with determinism, decomposability and negation alone.
//!
//! # Quickstart
//!
//! ```
//! use intext::boolfn::phi9;
//! use intext::core::compile_dd;
//! use intext::extensional::pqe_extensional;
//! use intext::numeric::BigRational;
//! use intext::query::{pqe_brute_force, HQuery};
//! use intext::tid::{complete_database, uniform_tid};
//!
//! // Dalvi–Suciu's q9 on a complete database, every tuple with Pr = 1/2.
//! let tid = uniform_tid(complete_database(3, 2), BigRational::from_ratio(1, 2));
//! let q = HQuery::new(phi9());
//!
//! // Extensional: Möbius inversion (the inclusion–exclusion route).
//! let ext = pqe_extensional(&q, &tid).unwrap();
//! // Intensional: compile a d-D lineage, evaluate bottom-up (Theorem 5.2).
//! let dd = compile_dd(&phi9(), tid.database()).unwrap();
//! let int = dd.probability_exact(&tid);
//! // Ground truth: enumerate all 2^|D| possible worlds.
//! let brute = pqe_brute_force(&q, &tid).unwrap();
//!
//! assert_eq!(ext, int);
//! assert_eq!(int, brute);
//! ```
//!
//! See `DESIGN.md` for the paper-to-module map and `EXPERIMENTS.md` for
//! the reproduced figures and claims.

pub use intext_boolfn as boolfn;
pub use intext_circuits as circuits;
pub use intext_core as core;
pub use intext_extensional as extensional;
pub use intext_lattice as lattice;
pub use intext_lineage as lineage;
pub use intext_matching as matching;
pub use intext_numeric as numeric;
pub use intext_query as query;
pub use intext_tid as tid;
