//! `intext-serve` — the PQE server, as a process.
//!
//! ```text
//! intext-serve --demo                      # embedded workload, then exit
//! intext-serve --demo --wal state/         # durable workload: recover, verify, WAL + checkpoint
//! intext-serve --recover --wal state/      # recover + verify ≡ fresh compiles, then exit
//! intext-serve --tcp 127.0.0.1:7979        # serve the frame protocol over TCP
//! intext-serve --unix /tmp/intext.sock     # ... or a Unix-domain socket
//!     [--workers N] [--queue N] [--batch-budget N] [--deadline-ms N]
//! ```
//!
//! The demo starts an in-process server, pushes a mixed workload
//! through it (single exact queries, a sharded f64 batch, an estimate,
//! a cache snapshot), cross-checks every answer against a sequential
//! engine, and prints the merged stats — a smoke test of the whole
//! serve stack in one command.
//!
//! With `--wal DIR` the demo becomes the durable workload
//! `scripts/crash-loop.sh` SIGKILLs (DESIGN.md §12): it first recovers
//! whatever a previous incarnation left in `DIR` (printing the
//! [`RecoveryReport`](intext::engine::RecoveryReport)), verifies every
//! recovered artifact byte-identical to a fresh compile, then streams a
//! fixed seeded sequence of live tuple updates — each one WAL-logged
//! *before* it is applied, with periodic atomic checkpoints — and
//! prints the final exact answers. The update stream is deterministic,
//! so a run that completes prints the same `answer` lines no matter how
//! many earlier incarnations were killed mid-write. `--recover` does
//! the recover + verify part alone and exits (exit 1 on any mismatch).

use std::process::ExitCode;
use std::time::Duration;

use intext::boolfn::{phi9, BoolFn};
use intext::engine::{DurableDir, EngineConfig, PqeEngine, TupleUpdate};
use intext::numeric::BigRational;
use intext::query::HQuery;
use intext::serve::{listen_tcp, ServeConfig, Server};
use intext::tid::{complete_database, uniform_tid, Database, Tid, TupleDesc, TupleId};

#[cfg(unix)]
use intext::serve::listen_unix;

struct Args {
    tcp: Option<String>,
    unix: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    batch_budget: Option<usize>,
    deadline_ms: Option<u64>,
    demo: bool,
    wal: Option<String>,
    recover: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        unix: None,
        workers: None,
        queue: None,
        batch_budget: None,
        deadline_ms: None,
        demo: false,
        wal: None,
        recover: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--unix" => args.unix = Some(value("--unix")?),
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--queue" => {
                args.queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|e| format!("--queue: {e}"))?,
                )
            }
            "--batch-budget" => {
                args.batch_budget = Some(
                    value("--batch-budget")?
                        .parse()
                        .map_err(|e| format!("--batch-budget: {e}"))?,
                )
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--demo" => args.demo = true,
            "--wal" => args.wal = Some(value("--wal")?),
            "--recover" => args.recover = true,
            "--help" | "-h" => {
                println!(
                    "usage: intext-serve [--demo] [--wal DIR] [--recover] \
                     [--tcp ADDR] [--unix PATH] \
                     [--workers N] [--queue N] [--batch-budget N] [--deadline-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.recover && args.wal.is_none() {
        return Err("--recover needs --wal DIR (the durable directory to recover)".into());
    }
    if !args.demo && !args.recover && args.tcp.is_none() && args.unix.is_none() {
        return Err("nothing to do: pass --demo, --recover, --tcp ADDR, or --unix PATH".into());
    }
    Ok(args)
}

fn serve_config(args: &Args) -> ServeConfig {
    let mut config = ServeConfig {
        engine: EngineConfig::default(),
        ..ServeConfig::default()
    };
    if let Some(workers) = args.workers {
        config.workers = workers;
    }
    if let Some(queue) = args.queue {
        config.queue_capacity = queue;
    }
    config.max_batch_scenarios = args.batch_budget;
    config.default_deadline = args.deadline_ms.map(Duration::from_millis);
    config
}

fn demo(server: &Server) -> Result<(), String> {
    let handle = server.handle();
    let q9 = HQuery::new(phi9());
    let tid = uniform_tid(complete_database(3, 2), BigRational::from_ratio(1, 2));
    let scenarios: Vec<Tid> = (1..=6)
        .map(|i| uniform_tid(complete_database(3, 2), BigRational::from_ratio(i, 7)))
        .collect();

    // Sequential oracle for the cross-check.
    let mut oracle = PqeEngine::new();

    let served = handle.evaluate(&q9, &tid).map_err(|e| e.to_string())?;
    let expected = oracle.evaluate(&q9, &tid).map_err(|e| format!("{e}"))?;
    if served != expected {
        return Err("served exact answer diverged from the sequential engine".into());
    }
    println!("evaluate  φ9: {served} (= sequential engine, bit-identical)");

    let batch = handle
        .evaluate_batch_f64(&q9, &scenarios, 3)
        .map_err(|e| e.to_string())?;
    let expected_batch = oracle
        .evaluate_batch_sharded_f64(&q9, &scenarios, 3)
        .map_err(|e| format!("{e}"))?;
    if batch
        .iter()
        .zip(&expected_batch)
        .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err("served batch diverged from the sequential engine".into());
    }
    println!(
        "batch     φ9: {} scenarios across 3 shards, bit-identical to the engine's sharded path",
        batch.len()
    );

    let estimate = handle.estimate(&q9, &tid).map_err(|e| e.to_string())?;
    println!(
        "estimate  φ9: {:.6} (ε = {}, exact route)",
        estimate.value, estimate.eps
    );

    let snapshot = handle.snapshot().map_err(|e| e.to_string())?;
    let mut replica = PqeEngine::new();
    let report = replica
        .load_cache(&snapshot)
        .map_err(|e| format!("snapshot load: {e}"))?;
    if replica.evaluate(&q9, &tid).map_err(|e| format!("{e}"))? != expected {
        return Err("warm-started replica diverged".into());
    }
    println!(
        "snapshot : {} bytes, {} artifacts — replica warm-started, answers bit-identical",
        snapshot.len(),
        report.artifacts
    );

    let stats = handle.stats();
    println!(
        "stats    : {} queries ({} obdd / {} d-D / {} extensional / {} brute / {} sampled), \
         {} cache hits / {} misses",
        stats.queries,
        stats.obdd_plans,
        stats.dd_plans,
        stats.extensional_plans,
        stats.brute_force_plans,
        stats.sample_plans,
        stats.cache_hits,
        stats.cache_misses,
    );
    Ok(())
}

// ---------------------------------------------------------------------
// The durable workload (`--wal DIR`): the crash-loop target.
// ---------------------------------------------------------------------

/// Chain length of the durable workload's instances.
const WAL_K: u8 = 2;
/// Domain size of the durable workload's instances.
const WAL_DOMAIN: u32 = 2;
/// Instance size cap (at most `2^7` possible worlds per evaluation).
const WAL_TUPLE_CAP: usize = 7;
/// Live updates per run. High enough that a run spends most of its
/// wall-clock fsyncing WAL records and rotating checkpoints — the
/// window `scripts/crash-loop.sh` aims its SIGKILLs at.
const WAL_STEPS: usize = 120;
/// Checkpoint cadence, in steps.
const WAL_CHECKPOINT_EVERY: usize = 3;
/// The fixed seed: every incarnation replays the same update stream,
/// so completed runs print identical `answer` lines regardless of how
/// many predecessors were killed mid-write.
const WAL_SEED: u64 = 0xD00D_5EED;

/// SplitMix64, as in the differential test harnesses.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn wal_rational(state: &mut u64) -> BigRational {
    let den = 1 + mix(state) % 6;
    let num = mix(state) % (den + 1);
    BigRational::from_ratio(num as i64, den)
}

/// Every tuple the `(WAL_K, WAL_DOMAIN)` vocabulary admits.
fn wal_universe() -> Vec<TupleDesc> {
    let mut all = Vec::new();
    for a in 0..WAL_DOMAIN {
        all.push(TupleDesc::R(a));
    }
    for i in 1..=WAL_K {
        for a in 0..WAL_DOMAIN {
            for b in 0..WAL_DOMAIN {
                all.push(TupleDesc::S(i, a, b));
            }
        }
    }
    for b in 0..WAL_DOMAIN {
        all.push(TupleDesc::T(b));
    }
    all
}

/// One live update of the workload stream.
enum WalOp {
    Insert(TupleDesc, BigRational),
    Remove(TupleId),
    Reweight(TupleId, BigRational),
}

/// The whole deterministic workload: the initial instance and the full
/// update stream, derived from [`WAL_SEED`] alone.
fn wal_workload() -> (Tid, Vec<WalOp>) {
    let mut state = WAL_SEED;
    let all = wal_universe();
    let mut tid = Tid::new(Database::new(WAL_K, WAL_DOMAIN), Vec::new()).expect("valid shape");
    for &t in &all {
        if tid.len() < WAL_TUPLE_CAP && mix(&mut state).is_multiple_of(2) {
            let p = wal_rational(&mut state);
            tid.insert(t, p).expect("fresh tuple");
        }
    }
    if tid.is_empty() {
        let p = wal_rational(&mut state);
        tid.insert(all[0], p).expect("fresh tuple");
    }
    let initial = tid.clone();
    let mut ops = Vec::with_capacity(WAL_STEPS);
    for _ in 0..WAL_STEPS {
        let present: Vec<TupleId> = tid.database().iter().map(|(id, _)| id).collect();
        let absent: Vec<TupleDesc> = all
            .iter()
            .copied()
            .filter(|t| !tid.database().iter().any(|(_, have)| have == *t))
            .collect();
        let can_insert = !absent.is_empty() && tid.len() < WAL_TUPLE_CAP;
        let roll = mix(&mut state) % 4;
        let op = if present.is_empty() || (can_insert && roll < 2) {
            let t = absent[(mix(&mut state) as usize) % absent.len()];
            WalOp::Insert(t, wal_rational(&mut state))
        } else if roll == 2 {
            WalOp::Remove(present[(mix(&mut state) as usize) % present.len()])
        } else {
            let id = present[(mix(&mut state) as usize) % present.len()];
            WalOp::Reweight(id, wal_rational(&mut state))
        };
        match &op {
            WalOp::Insert(desc, p) => {
                tid.insert(*desc, p.clone()).expect("absent tuple");
            }
            WalOp::Remove(id) => {
                tid.remove(*id).expect("present tuple");
            }
            WalOp::Reweight(id, p) => {
                tid.set_prob(*id, p.clone()).expect("present tuple");
            }
        }
        ops.push(op);
    }
    (initial, ops)
}

/// The workload's durable functions: the first three cacheable-region
/// φs on `WAL_K + 1` variables (only cached artifacts have deltas to
/// log), plus the shape timeline the instance moves through.
fn wal_probes() -> (Vec<BoolFn>, Vec<Database>) {
    let (initial, ops) = wal_workload();
    let mut probe = PqeEngine::new();
    let tables: u64 = 1 << (1u64 << (WAL_K + 1));
    let mut durable = Vec::new();
    for t in 0..tables {
        let phi = BoolFn::from_table_u64(WAL_K + 1, t);
        let q = HQuery::new(phi.clone());
        probe.evaluate(&q, &initial).expect("probe evaluation");
        if probe.export_artifact(&q, initial.database()).is_ok() {
            durable.push(phi);
            if durable.len() == 3 {
                break;
            }
        }
    }
    let mut shapes = vec![initial.database().clone()];
    let mut tid = initial;
    for op in &ops {
        match op {
            WalOp::Insert(desc, p) => {
                tid.insert(*desc, p.clone()).expect("absent tuple");
            }
            WalOp::Remove(id) => {
                tid.remove(*id).expect("present tuple");
            }
            WalOp::Reweight(id, p) => {
                tid.set_prob(*id, p.clone()).expect("present tuple");
            }
        }
        shapes.push(tid.database().clone());
    }
    (durable, shapes)
}

/// Recovers `dir` and proves the recovered cache trustworthy: every
/// artifact it holds for a durable φ at any shape of the workload
/// timeline must be byte-identical to a fresh compile of that
/// (φ, shape). Returns the verified engine.
fn recover_verified(dir: &str) -> Result<PqeEngine, String> {
    let (engine, report) =
        PqeEngine::recover(EngineConfig::default(), dir).map_err(|e| format!("recover: {e}"))?;
    println!("recovery : {report}");
    let (durable, shapes) = wal_probes();
    let mut verified = 0usize;
    for phi in &durable {
        let q = HQuery::new(phi.clone());
        for shape in &shapes {
            let Ok(bytes) = engine.export_artifact(&q, shape) else {
                continue;
            };
            let mut fresh = PqeEngine::new();
            let probe = uniform_tid(shape.clone(), BigRational::from_ratio(1, 2));
            fresh.evaluate(&q, &probe).map_err(|e| format!("{e}"))?;
            let want = fresh
                .export_artifact(&q, shape)
                .map_err(|e| format!("fresh export: {e}"))?;
            if bytes != want {
                return Err(format!(
                    "recovered artifact for φ {:#x} differs from a fresh compile",
                    phi.table_u64()
                ));
            }
            verified += 1;
        }
    }
    println!("verify   : {verified} recovered artifact(s) byte-identical to fresh compiles");
    Ok(engine)
}

/// `--demo --wal DIR`: recover + verify, then stream the deterministic
/// durable workload (WAL-log each structural delta *before* applying
/// it, checkpoint periodically) and print the final exact answers.
fn durable_demo(dir: &str) -> Result<(), String> {
    let mut engine = recover_verified(dir)?;
    let ddir = DurableDir::open(dir).map_err(|e| format!("open {dir}: {e}"))?;
    let (mut tid, ops) = wal_workload();
    let (durable, _) = wal_probes();

    let warm = |engine: &mut PqeEngine, tid: &Tid| -> Result<(), String> {
        for phi in &durable {
            engine
                .evaluate(HQuery::new(phi.clone()), tid)
                .map_err(|e| format!("{e}"))?;
        }
        Ok(())
    };
    warm(&mut engine, &tid)?;
    ddir.checkpoint(&engine)
        .map_err(|e| format!("checkpoint: {e}"))?;

    for (step, op) in ops.iter().enumerate() {
        let update = match op {
            WalOp::Insert(desc, _) => Some(TupleUpdate::Insert { desc: *desc }),
            WalOp::Remove(id) => Some(TupleUpdate::Remove { id: id.0 }),
            WalOp::Reweight(..) => None,
        };
        if let Some(update) = update {
            warm(&mut engine, &tid)?;
            for phi in &durable {
                let delta = engine
                    .export_delta(&HQuery::new(phi.clone()), tid.database(), &update)
                    .map_err(|e| format!("export_delta: {e}"))?;
                ddir.log_delta(&delta)
                    .map_err(|e| format!("log_delta: {e}"))?;
            }
        }
        match op {
            WalOp::Insert(desc, p) => {
                engine
                    .insert_tuple(&mut tid, *desc, p.clone())
                    .map_err(|e| format!("{e}"))?;
            }
            WalOp::Remove(id) => {
                engine
                    .remove_tuple(&mut tid, *id)
                    .map_err(|e| format!("{e}"))?;
            }
            WalOp::Reweight(id, p) => {
                engine
                    .set_probability(&mut tid, *id, p.clone())
                    .map_err(|e| format!("{e}"))?;
            }
        }
        if step % WAL_CHECKPOINT_EVERY == WAL_CHECKPOINT_EVERY - 1 {
            ddir.checkpoint(&engine)
                .map_err(|e| format!("checkpoint: {e}"))?;
        }
    }

    // Final exact answers: the durable φs plus three hard-region
    // functions, all over the final instance. Deterministic — the
    // crash-loop script diffs these lines against a reference run.
    let mut answer_fns = durable;
    for table in [0x16u64, 0x69, 0xE8] {
        answer_fns.push(BoolFn::from_table_u64(WAL_K + 1, table));
    }
    for phi in &answer_fns {
        let p = engine
            .evaluate(HQuery::new(phi.clone()), &tid)
            .map_err(|e| format!("{e}"))?;
        println!("answer   : φ {:#04x} = {p}", phi.table_u64());
    }
    let stats = engine.stats();
    println!(
        "stats    : {} wal records applied, {} quarantined, {} patches applied, \
         {} cache entries",
        stats.wal_records_applied,
        stats.recovery_quarantines,
        stats.patches_applied,
        engine.cache_len(),
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("intext-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Durable modes run the engine directly — no worker pool to start.
    if args.recover {
        let dir = args.wal.as_deref().expect("checked in parse_args");
        return match recover_verified(dir) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("intext-serve: recover failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.demo {
        if let Some(dir) = args.wal.as_deref() {
            return match durable_demo(dir) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("intext-serve: durable demo failed: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    }

    let server = match Server::start(serve_config(&args)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("intext-serve: bad engine config: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.demo {
        if let Err(e) = demo(&server) {
            eprintln!("intext-serve: demo failed: {e}");
            return ExitCode::FAILURE;
        }
        server.shutdown();
        return ExitCode::SUCCESS;
    }

    // Keep the listeners alive until the process is killed.
    let mut listeners = Vec::new();
    if let Some(addr) = &args.tcp {
        match listen_tcp(server.handle(), addr.as_str()) {
            Ok(listener) => {
                println!(
                    "intext-serve: listening on tcp {}",
                    listener.tcp_addr().expect("tcp listener has a tcp addr")
                );
                listeners.push(listener);
            }
            Err(e) => {
                eprintln!("intext-serve: tcp bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(unix)]
    if let Some(path) = &args.unix {
        match listen_unix(server.handle(), path) {
            Ok(listener) => {
                println!("intext-serve: listening on unix {path}");
                listeners.push(listener);
            }
            Err(e) => {
                eprintln!("intext-serve: unix bind {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(not(unix))]
    if args.unix.is_some() {
        eprintln!("intext-serve: --unix is unsupported on this platform");
        return ExitCode::FAILURE;
    }

    loop {
        std::thread::park();
    }
}
