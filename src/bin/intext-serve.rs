//! `intext-serve` — the PQE server, as a process.
//!
//! ```text
//! intext-serve --demo                      # embedded workload, then exit
//! intext-serve --tcp 127.0.0.1:7979        # serve the frame protocol over TCP
//! intext-serve --unix /tmp/intext.sock     # ... or a Unix-domain socket
//!     [--workers N] [--queue N] [--batch-budget N] [--deadline-ms N]
//! ```
//!
//! The demo starts an in-process server, pushes a mixed workload
//! through it (single exact queries, a sharded f64 batch, an estimate,
//! a cache snapshot), cross-checks every answer against a sequential
//! engine, and prints the merged stats — a smoke test of the whole
//! serve stack in one command.

use std::process::ExitCode;
use std::time::Duration;

use intext::boolfn::phi9;
use intext::engine::{EngineConfig, PqeEngine};
use intext::numeric::BigRational;
use intext::query::HQuery;
use intext::serve::{listen_tcp, ServeConfig, Server};
use intext::tid::{complete_database, uniform_tid, Tid};

#[cfg(unix)]
use intext::serve::listen_unix;

struct Args {
    tcp: Option<String>,
    unix: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    batch_budget: Option<usize>,
    deadline_ms: Option<u64>,
    demo: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        unix: None,
        workers: None,
        queue: None,
        batch_budget: None,
        deadline_ms: None,
        demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--unix" => args.unix = Some(value("--unix")?),
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--queue" => {
                args.queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|e| format!("--queue: {e}"))?,
                )
            }
            "--batch-budget" => {
                args.batch_budget = Some(
                    value("--batch-budget")?
                        .parse()
                        .map_err(|e| format!("--batch-budget: {e}"))?,
                )
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--demo" => args.demo = true,
            "--help" | "-h" => {
                println!(
                    "usage: intext-serve [--demo] [--tcp ADDR] [--unix PATH] \
                     [--workers N] [--queue N] [--batch-budget N] [--deadline-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !args.demo && args.tcp.is_none() && args.unix.is_none() {
        return Err("nothing to do: pass --demo, --tcp ADDR, or --unix PATH".into());
    }
    Ok(args)
}

fn serve_config(args: &Args) -> ServeConfig {
    let mut config = ServeConfig {
        engine: EngineConfig::default(),
        ..ServeConfig::default()
    };
    if let Some(workers) = args.workers {
        config.workers = workers;
    }
    if let Some(queue) = args.queue {
        config.queue_capacity = queue;
    }
    config.max_batch_scenarios = args.batch_budget;
    config.default_deadline = args.deadline_ms.map(Duration::from_millis);
    config
}

fn demo(server: &Server) -> Result<(), String> {
    let handle = server.handle();
    let q9 = HQuery::new(phi9());
    let tid = uniform_tid(complete_database(3, 2), BigRational::from_ratio(1, 2));
    let scenarios: Vec<Tid> = (1..=6)
        .map(|i| uniform_tid(complete_database(3, 2), BigRational::from_ratio(i, 7)))
        .collect();

    // Sequential oracle for the cross-check.
    let mut oracle = PqeEngine::new();

    let served = handle.evaluate(&q9, &tid).map_err(|e| e.to_string())?;
    let expected = oracle.evaluate(&q9, &tid).map_err(|e| format!("{e}"))?;
    if served != expected {
        return Err("served exact answer diverged from the sequential engine".into());
    }
    println!("evaluate  φ9: {served} (= sequential engine, bit-identical)");

    let batch = handle
        .evaluate_batch_f64(&q9, &scenarios, 3)
        .map_err(|e| e.to_string())?;
    let expected_batch = oracle
        .evaluate_batch_sharded_f64(&q9, &scenarios, 3)
        .map_err(|e| format!("{e}"))?;
    if batch
        .iter()
        .zip(&expected_batch)
        .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err("served batch diverged from the sequential engine".into());
    }
    println!(
        "batch     φ9: {} scenarios across 3 shards, bit-identical to the engine's sharded path",
        batch.len()
    );

    let estimate = handle.estimate(&q9, &tid).map_err(|e| e.to_string())?;
    println!(
        "estimate  φ9: {:.6} (ε = {}, exact route)",
        estimate.value, estimate.eps
    );

    let snapshot = handle.snapshot().map_err(|e| e.to_string())?;
    let mut replica = PqeEngine::new();
    let report = replica
        .load_cache(&snapshot)
        .map_err(|e| format!("snapshot load: {e}"))?;
    if replica.evaluate(&q9, &tid).map_err(|e| format!("{e}"))? != expected {
        return Err("warm-started replica diverged".into());
    }
    println!(
        "snapshot : {} bytes, {} artifacts — replica warm-started, answers bit-identical",
        snapshot.len(),
        report.artifacts
    );

    let stats = handle.stats();
    println!(
        "stats    : {} queries ({} obdd / {} d-D / {} extensional / {} brute / {} sampled), \
         {} cache hits / {} misses",
        stats.queries,
        stats.obdd_plans,
        stats.dd_plans,
        stats.extensional_plans,
        stats.brute_force_plans,
        stats.sample_plans,
        stats.cache_hits,
        stats.cache_misses,
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("intext-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(serve_config(&args)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("intext-serve: bad engine config: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.demo {
        if let Err(e) = demo(&server) {
            eprintln!("intext-serve: demo failed: {e}");
            return ExitCode::FAILURE;
        }
        server.shutdown();
        return ExitCode::SUCCESS;
    }

    // Keep the listeners alive until the process is killed.
    let mut listeners = Vec::new();
    if let Some(addr) = &args.tcp {
        match listen_tcp(server.handle(), addr.as_str()) {
            Ok(listener) => {
                println!(
                    "intext-serve: listening on tcp {}",
                    listener.tcp_addr().expect("tcp listener has a tcp addr")
                );
                listeners.push(listener);
            }
            Err(e) => {
                eprintln!("intext-serve: tcp bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(unix)]
    if let Some(path) = &args.unix {
        match listen_unix(server.handle(), path) {
            Ok(listener) => {
                println!("intext-serve: listening on unix {path}");
                listeners.push(listener);
            }
            Err(e) => {
                eprintln!("intext-serve: unix bind {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[cfg(not(unix))]
    if args.unix.is_some() {
        eprintln!("intext-serve: --unix is unsupported on this platform");
        return ExitCode::FAILURE;
    }

    loop {
        std::thread::park();
    }
}
