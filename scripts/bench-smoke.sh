#!/usr/bin/env bash
# Bench smoke run: EXECUTE every Criterion target, briefly.
#
# `cargo bench --no-run` only proves the targets compile; a bench that
# panics on its first iteration (a broken fixture, a tripped internal
# assertion — several targets assert counter reconciliation and
# bit-identity as they run) would sail through CI unnoticed. This script
# runs the full bench suite with a tiny per-benchmark wall-clock budget
# (see INTEXT_BENCH_BUDGET_MS in vendor/criterion), so every target's
# setup and at least one timed iteration of every benchmark actually
# execute. The printed numbers are NOT measurements — for real numbers
# run `cargo bench -p intext-bench` with the default budget.
#
# Usage: bash scripts/bench-smoke.sh   (from the repo root; CI runs it)
set -euo pipefail

cd "$(dirname "$0")/.."

# 10 ms per benchmark: one warm-up + at least one timed iteration each,
# keeping the whole 18-target suite in CI-friendly time.
export INTEXT_BENCH_BUDGET_MS="${INTEXT_BENCH_BUDGET_MS:-10}"

echo "bench smoke: executing all targets with ${INTEXT_BENCH_BUDGET_MS} ms budgets"
cargo bench -p intext-bench --locked
echo "bench smoke: every target ran to completion"
