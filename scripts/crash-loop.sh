#!/usr/bin/env bash
# Crash loop: SIGKILL the durable demo at random points, then prove
# recovery (DESIGN.md §12).
#
# `tests/engine_recovery.rs` enumerates crash points deterministically
# through the in-memory fault layer; this script is the end-to-end
# complement on the real filesystem and the real binary. It runs
# `intext-serve --demo --wal` (a fixed-seed stream of WAL-logged live
# updates with periodic atomic checkpoints) to completion once as the
# reference, then starts the same workload over a persistent directory
# and `kill -9`s it at a random moment, over and over. After every kill
# the recover-and-verify mode must succeed — `--recover` replays
# snapshot + WAL and exits nonzero unless every recovered artifact is
# byte-identical to a fresh compile. Finally one full run over the
# crash-scarred directory must print exactly the reference's `answer`
# lines: whatever the kills tore, the engine's answers are unchanged.
#
# Usage: bash scripts/crash-loop.sh   (from the repo root; CI runs it)
#   CRASH_LOOP_ITERATIONS=N   number of SIGKILLs (default 8)
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=target/release/intext-serve
ITERATIONS="${CRASH_LOOP_ITERATIONS:-8}"

if [ ! -x "$BIN" ]; then
    echo "crash-loop: building $BIN"
    cargo build --release --bin intext-serve --locked
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Reference: the workload run to completion in a pristine directory.
"$BIN" --demo --wal "$work/reference" > "$work/reference.out"
grep '^answer' "$work/reference.out" > "$work/reference.answers"
echo "crash-loop: reference run complete ($(wc -l < "$work/reference.answers") answers)"

for i in $(seq 1 "$ITERATIONS"); do
    # Start the durable demo over the persistent directory and SIGKILL
    # it after a random 5–84 ms — early kills land in recovery or the
    # first checkpoint, later ones mid-WAL-append or mid-rotation.
    delay="$(printf '0.0%02d' $((RANDOM % 80 + 5)))"
    "$BIN" --demo --wal "$work/crashed" > "$work/run-$i.out" 2>&1 &
    pid=$!
    sleep "$delay"
    kill -9 "$pid" 2>/dev/null || true
    set +e
    wait "$pid"
    status=$?
    set -e
    if [ "$status" -eq 0 ]; then
        # The kill missed and the run completed: its answers must
        # already match the reference.
        grep '^answer' "$work/run-$i.out" | diff - "$work/reference.answers" \
            || { echo "crash-loop: completed run $i diverged"; exit 1; }
    elif [ "$status" -ne 137 ]; then
        echo "crash-loop: run $i exited $status (expected 0 or SIGKILL/137)"
        cat "$work/run-$i.out"
        exit 1
    fi
    # Whatever the kill left behind, recovery must succeed and verify
    # byte-identity against fresh compiles (nonzero exit otherwise).
    "$BIN" --recover --wal "$work/crashed" > "$work/recover-$i.out" \
        || { echo "crash-loop: recovery $i failed"; cat "$work/recover-$i.out"; exit 1; }
done

# One full run over the crash-scarred directory: it must complete and
# answer exactly like the never-crashed reference.
"$BIN" --demo --wal "$work/crashed" > "$work/final.out"
grep '^answer' "$work/final.out" | diff - "$work/reference.answers" \
    || { echo "crash-loop: final run diverged from the reference"; exit 1; }
grep '^recovery' "$work"/recover-*.out | sed 's/^/crash-loop: /'
echo "crash-loop: survived $ITERATIONS SIGKILLs; recovered answers match the reference run"
