#!/usr/bin/env bash
# Fails if the root markdown docs contain relative links to files that
# do not exist in the repository. Run by the CI docs job; safe to run
# locally from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for doc in README.md DESIGN.md EXPERIMENTS.md PAPER.md ROADMAP.md CHANGES.md; do
    [ -f "$doc" ] || { echo "missing doc: $doc"; status=1; continue; }
    # Extract every markdown link target `](...)`, then check the
    # file-path ones (external URLs and pure #anchors are skipped).
    while IFS= read -r target; do
        target=${target%%#*}          # drop in-page anchors
        [ -n "$target" ] || continue
        case $target in
            http://*|https://*|mailto:*) continue ;;
        esac
        if [ ! -e "$target" ]; then
            echo "$doc: broken link -> $target"
            status=1
        fi
    done < <(grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$status" -eq 0 ]; then
    echo "doc links OK"
fi
exit "$status"
