#!/usr/bin/env bash
# Fails if the repository's markdown docs contain relative links to
# files that do not exist. Run by the CI docs job; safe to run locally
# from anywhere inside the repo.
#
# Coverage: every *.md at the repo root (discovered by glob, so a new
# doc — or a restored one, like ISSUE.md — is checked the moment it
# exists and can never dangle silently) plus vendor/README.md. A core
# set that the other docs link to must also *exist*, so deleting, say,
# DESIGN.md fails the check rather than skipping its links.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

# These must exist: the crates' doc comments and the other root docs
# link into them by name.
for required in README.md DESIGN.md EXPERIMENTS.md PAPER.md ROADMAP.md CHANGES.md ISSUE.md; do
    if [ ! -f "$required" ]; then
        echo "missing doc: $required"
        status=1
    fi
done

check_doc() {
    local doc=$1 base
    base=$(dirname "$doc")            # relative links resolve per-doc
    # Extract every markdown link target `](...)`, then check the
    # file-path ones (external URLs and pure #anchors are skipped).
    while IFS= read -r target; do
        target=${target%%#*}          # drop in-page anchors
        [ -n "$target" ] || continue
        case $target in
            http://*|https://*|mailto:*) continue ;;
        esac
        if [ ! -e "$base/$target" ]; then
            echo "$doc: broken link -> $target"
            status=1
        fi
    done < <(grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//')
}

for doc in *.md vendor/README.md; do
    [ -f "$doc" ] || continue
    check_doc "$doc"
done

if [ "$status" -eq 0 ]; then
    echo "doc links OK"
fi
exit "$status"
