//! Regenerates the golden store fixtures under `tests/fixtures/`.
//!
//! ```text
//! cargo run --example regen_fixtures            # rewrite tests/fixtures/
//! cargo run --example regen_fixtures -- DIR     # write into DIR instead
//! ```
//!
//! The fixtures pin the version-1 persistence format (`DESIGN.md` §5):
//! CI regenerates them into a scratch directory and fails if the bytes
//! differ from the committed ones (`scripts/check-fixtures.sh`), so any
//! drift in the format *or* in the compiler's deterministic output is
//! caught before it ships. `tests/engine_store.rs` must agree with the
//! `(φ, shape)` pairs below — it recompiles them fresh and asserts
//! byte-identical exports. The `delta_*.intx` fixtures pin the update
//! delta container the live-update API ships (`DESIGN.md` §9).

use std::path::PathBuf;

use intext::boolfn::{phi9, BoolFn};
use intext::engine::{PqeEngine, TupleUpdate};
use intext::numeric::BigRational;
use intext::query::HQuery;
use intext::tid::{complete_database, uniform_tid, Database, TupleId};

/// The two pinned cases: one per artifact kind.
///
/// * `degenerate_obdd`: ψ = h₀ ∧ ¬h₂ (ignores h₁, so Proposition 3.7
///   compiles a reduced OBDD) on the complete k = 2, domain-2 instance.
/// * `zero_euler_dd`: φ9 (nondegenerate, e(φ9) = 0, so Theorem 5.2
///   compiles a d-D circuit) on the complete k = 3, domain-2 instance.
fn fixtures() -> Vec<(&'static str, BoolFn, Database)> {
    let psi = &BoolFn::var(3, 0) & &!&BoolFn::var(3, 2);
    vec![
        ("degenerate_obdd.intx", psi, complete_database(2, 2)),
        ("zero_euler_dd.intx", phi9(), complete_database(3, 2)),
    ]
}

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/fixtures".into())
        .into();
    std::fs::create_dir_all(&out).expect("fixture directory is creatable");
    for (name, phi, db) in fixtures() {
        let q = HQuery::new(phi);
        let tid = uniform_tid(db, BigRational::from_ratio(1, 2));
        let mut engine = PqeEngine::new();
        engine
            .evaluate(&q, &tid)
            .expect("fixture queries are cacheable by construction");
        let blob = engine
            .export_artifact(&q, tid.database())
            .expect("just compiled, so cached");
        let path = out.join(name);
        std::fs::write(&path, &blob).expect("fixture file is writable");
        println!("wrote {} ({} bytes)", path.display(), blob.len());
    }

    // Delta fixtures pin the `KIND_DELTA` wire format (DESIGN.md §9):
    // a remove of tuple 0 from the degenerate-OBDD shape, and the
    // insert that restores it. Exported against the database each delta
    // *applies to*, exactly as a live publisher would ship them.
    let (_, psi, db) = fixtures().swap_remove(0);
    let q = HQuery::new(psi);
    let mut tid = uniform_tid(db, BigRational::from_ratio(1, 2));
    let mut engine = PqeEngine::new();
    engine.evaluate(&q, &tid).expect("cacheable");
    let remove = TupleUpdate::Remove { id: 0 };
    let blob = engine
        .export_delta(&q, tid.database(), &remove)
        .expect("cached, so exportable");
    let path = out.join("delta_remove.intx");
    std::fs::write(&path, &blob).expect("fixture file is writable");
    println!("wrote {} ({} bytes)", path.display(), blob.len());

    let (desc, _) = engine
        .remove_tuple(&mut tid, TupleId(0))
        .expect("tuple 0 exists");
    let insert = TupleUpdate::Insert { desc };
    let blob = engine
        .export_delta(&q, tid.database(), &insert)
        .expect("still cached after the patch");
    let path = out.join("delta_insert.intx");
    std::fs::write(&path, &blob).expect("fixture file is writable");
    println!("wrote {} ({} bytes)", path.display(), blob.len());
}
