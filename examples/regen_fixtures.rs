//! Regenerates the golden store fixtures under `tests/fixtures/`.
//!
//! ```text
//! cargo run --example regen_fixtures            # rewrite tests/fixtures/
//! cargo run --example regen_fixtures -- DIR     # write into DIR instead
//! ```
//!
//! The fixtures pin the version-1 persistence format (`DESIGN.md` §5):
//! CI regenerates them into a scratch directory and fails if the bytes
//! differ from the committed ones (`scripts/check-fixtures.sh`), so any
//! drift in the format *or* in the compiler's deterministic output is
//! caught before it ships. `tests/engine_store.rs` must agree with the
//! `(φ, shape)` pairs below — it recompiles them fresh and asserts
//! byte-identical exports.

use std::path::PathBuf;

use intext::boolfn::{phi9, BoolFn};
use intext::engine::PqeEngine;
use intext::numeric::BigRational;
use intext::query::HQuery;
use intext::tid::{complete_database, uniform_tid, Database};

/// The two pinned cases: one per artifact kind.
///
/// * `degenerate_obdd`: ψ = h₀ ∧ ¬h₂ (ignores h₁, so Proposition 3.7
///   compiles a reduced OBDD) on the complete k = 2, domain-2 instance.
/// * `zero_euler_dd`: φ9 (nondegenerate, e(φ9) = 0, so Theorem 5.2
///   compiles a d-D circuit) on the complete k = 3, domain-2 instance.
fn fixtures() -> Vec<(&'static str, BoolFn, Database)> {
    let psi = &BoolFn::var(3, 0) & &!&BoolFn::var(3, 2);
    vec![
        ("degenerate_obdd.intx", psi, complete_database(2, 2)),
        ("zero_euler_dd.intx", phi9(), complete_database(3, 2)),
    ]
}

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/fixtures".into())
        .into();
    std::fs::create_dir_all(&out).expect("fixture directory is creatable");
    for (name, phi, db) in fixtures() {
        let q = HQuery::new(phi);
        let tid = uniform_tid(db, BigRational::from_ratio(1, 2));
        let mut engine = PqeEngine::new();
        engine
            .evaluate(&q, &tid)
            .expect("fixture queries are cacheable by construction");
        let blob = engine
            .export_artifact(&q, tid.database())
            .expect("just compiled, so cached");
        let path = out.join(name);
        std::fs::write(&path, &blob).expect("fixture file is writable");
        println!("wrote {} ({} bytes)", path.display(), blob.len());
    }
}
