//! E6/E7: verification of the paper's Conjecture 1 (Section 7).
//!
//! For monotone `φ` with `e(φ) = 0`, the satisfying ("colored") or the
//! non-satisfying side of `G_V[φ]` should have a perfect matching. The
//! paper checked this for all monotone functions with `k <= 5` using the
//! Glucose SAT solver; the conjecture *is* a matching property, so we
//! check it with Hopcroft–Karp-style matching directly.
//!
//! Run with: `cargo run --release --example conjecture1 [--k5]`
//! (`--k5` adds the 7,828,354-function exhaustive run — a few minutes.)

use std::time::Instant;

use intext::boolfn::Valuation;
use intext::matching::{find_minimal_one_neg, verify_conjecture1_monotone};

fn main() {
    let k5 = std::env::args().any(|a| a == "--k5");
    let max_n = if k5 { 6 } else { 5 };

    println!("Conjecture 1: colored-PM ∨ uncolored-PM for monotone φ with e(φ)=0\n");
    for n in 1..=max_n {
        let start = Instant::now();
        let rep = verify_conjecture1_monotone(n);
        let elapsed = start.elapsed();
        println!(
            "k = {}: {} monotone functions, {} with e=0 → both {} / colored-only {} / uncolored-only {} / counterexamples {}   ({:.2?})",
            n - 1,
            rep.monotone_total,
            rep.euler_zero,
            rep.both_sides,
            rep.colored_only,
            rep.uncolored_only,
            rep.counterexamples.len(),
            elapsed,
        );
        assert!(rep.holds(), "CONJECTURE REFUTED at k = {}", n - 1);
    }
    println!("\nconjecture holds on every checked k ✓");

    println!("\nφ_one-neg search (Figure 7: is the 'or' necessary?):");
    for n in 1..=max_n {
        let start = Instant::now();
        match find_minimal_one_neg(n) {
            None => println!(
                "k = {}: every e=0 monotone function has a colored-side matching ({:.2?})",
                n - 1,
                start.elapsed()
            ),
            Some(f) => {
                println!(
                    "k = {}: minimal witness with NO colored-side matching found ({:.2?}):",
                    n - 1,
                    start.elapsed()
                );
                println!("  #SAT = {}", f.sat_count());
                let sat: Vec<String> = f.sat_iter().map(|v| Valuation(v).to_string()).collect();
                println!("  SAT = {}", sat.join(" "));
                println!(
                    "  (its non-colored side must match, per the conjecture: {})",
                    intext::matching::unsat_has_pm(&f)
                );
            }
        }
    }
    if !k5 {
        println!("\n(pass --k5 for the paper's full k = 5 run: ~7.8M functions)");
    }
}
