//! Quickstart: open the [`PqeEngine`] front door with a **UCQ parsed
//! from text** over a named vocabulary — safe queries take a lifted
//! PTIME plan, unsafe ones ground to a lineage circuit (DESIGN.md §11)
//! — then evaluate Dalvi–Suciu's query `q9` (the paper's `Q_φ9`), which
//! the engine classifies on the paper's Figure 1 map, routes to the
//! cheapest sound backend, and caches the compiled lineage so
//! probability re-weightings are linear circuit walks. Cross-check all
//! three underlying routes:
//!
//! 1. brute force over all possible worlds (exponential, exact),
//! 2. extensional lifted inference (Möbius inversion, Proposition 3.5),
//! 3. the paper's intensional d-D pipeline (Theorem 5.2),
//!
//! and finish in the hard region: a `#P`-hard query on an instance no
//! exact route can touch gets an anytime `(ε, δ)`-bounded Monte-Carlo
//! estimate (DESIGN.md §7).
//!
//! Run with: `cargo run --release --example quickstart`

use intext::boolfn::{phi9, BoolFn};
use intext::core::compile_dd;
use intext::engine::{EngineConfig, PqeEngine, SamplingConfig};
use intext::extensional::pqe_extensional;
use intext::numeric::BigRational;
use intext::query::{pqe_brute_force, HQuery, Query};
use intext::serve::{ServeConfig, Server};
use intext::tid::{
    complete_database, random_database, random_tid, uniform_tid, DbGenConfig, TupleId, Vocabulary,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Any UCQ text over a named vocabulary (two unary relations plus k
    // binary ones) is a query. The planner routes parsed queries like
    // everything else: Dalvi–Suciu-safe ones get a lifted PTIME plan,
    // H-shaped ones are recognized onto the Figure 1 machinery, and
    // unsafe ones ground to a lineage OBDD within a budget.
    let voc = Vocabulary::new(
        vec!["Author".to_string(), "Cited".to_string()],
        vec!["Wrote".to_string()],
    )
    .expect("two unary + one binary relation is a valid vocabulary");
    let papers = uniform_tid(complete_database(1, 2), BigRational::from_ratio(1, 2));
    let safe_q = Query::parse("Wrote(0,y), Cited(y)", &voc).expect("well-formed UCQ");
    let unsafe_q = Query::parse("Author(x), Wrote(x,y), Cited(y)", &voc).expect("well-formed UCQ");
    let mut front = PqeEngine::new();
    println!("UCQ front door (DESIGN.md §11):");
    println!("  {safe_q}\n    {}", front.explain(&safe_q, &papers));
    println!("  {unsafe_q}\n    {}", front.explain(&unsafe_q, &papers));
    let p_safe = front.evaluate(&safe_q, &papers).expect("safe: lifted");
    let p_unsafe = front.evaluate(&unsafe_q, &papers).expect("small: grounded");
    println!("  P(safe) = {p_safe}   P(unsafe) = {p_unsafe}\n");

    let mut rng = StdRng::seed_from_u64(2020);
    let db = random_database(
        &DbGenConfig {
            k: 3,
            domain_size: 2,
            density: 0.8,
            prob_denominator: 10,
        },
        &mut rng,
    );
    let mut tid = random_tid(db, 10, &mut rng);

    println!("database: k = 3, domain = 2, {} tuples", tid.len());
    for (id, desc) in tid.database().iter() {
        println!("  {desc}  with probability {}", tid.prob(id));
    }

    // phi9 = (2∨3) ∧ (0∨3) ∧ (1∨3) ∧ (0∨1∨2)  (Example 3.3 — the simplest
    // safe UCQ whose extensional evaluation needs Möbius inversion).
    let q = HQuery::new(phi9());
    println!("\nquery: Q_φ9 over h_{{3,0}}..h_{{3,3}} (safe; e(φ9) = 0)");

    // The engine is the front door: it plans, compiles, caches, evaluates.
    let mut engine = PqeEngine::new();
    println!("planner: {}", engine.explain(&q, &tid));
    let p = engine.evaluate(&q, &tid).expect("φ9 is tractable");
    let first = engine.stats().last.expect("just evaluated");
    println!(
        "engine answer                : {p}\n  [{} gates compiled in {:?}, evaluated in {:?}]",
        first.circuit_size.unwrap_or(0),
        first.compile_time,
        first.eval_time,
    );

    // Re-weight one tuple: the cached circuit is re-walked, not recompiled.
    tid.set_prob(TupleId(0), BigRational::from_ratio(1, 97))
        .expect("valid probability");
    let reweighted = engine.evaluate(&q, &tid).expect("cached");
    let second = engine.stats().last.expect("just evaluated");
    println!(
        "re-weighted (tuple 0 → 1/97) : {reweighted}\n  [cache hit: {}, recompile time {:?}]",
        second.cache_hit, second.compile_time,
    );
    assert!(second.cache_hit, "re-weighting must reuse the artifact");

    // Live updates: remove a tuple, then put it back. Each structural
    // change patches every cached artifact in place (Prop 3.7 group
    // extension / d-D leaf re-plugging, DESIGN.md §9) — zero
    // recompiles, and the patched circuit stays exact ground truth.
    let (desc, p0) = engine
        .remove_tuple(&mut tid, TupleId(0))
        .expect("tuple 0 exists");
    let without = engine.evaluate(&q, &tid).expect("patched artifact");
    assert_eq!(
        without,
        pqe_brute_force(&q, &tid).expect("small instance"),
        "patched artifact must equal ground truth"
    );
    engine
        .insert_tuple(&mut tid, desc, p0)
        .expect("the removed tuple fits back");
    let restored = engine.evaluate(&q, &tid).expect("patched artifact");
    assert_eq!(restored, reweighted, "same tuples, same probability");
    assert_eq!(
        engine.stats().cache_misses,
        1,
        "live updates never recompile — the warm-up compile stays the only one"
    );
    println!(
        "live update (remove {desc}, re-insert): P = {without} without it; \
         {} patches applied, {} recompiles avoided, still 1 compile ever",
        engine.stats().patches_applied,
        engine.stats().full_recompiles_avoided,
    );

    // Equivalence demo: the three routes agree bit-for-bit.
    let brute: BigRational = pqe_brute_force(&q, &tid).expect("small instance");
    println!("\nbrute force over 2^{} worlds : {brute}", tid.len());

    let ext = pqe_extensional(&q, &tid).expect("phi9 is safe");
    println!("extensional (Möbius)         : {ext}");

    let dd = compile_dd(&phi9(), tid.database()).expect("e(φ9) = 0");
    let int = dd.probability_exact(&tid);
    println!("intensional (d-D lineage)    : {int}");
    println!("compiled d-D: {}", dd.stats());
    println!(
        "template: {} leaves, {} negation gates",
        dd.fragmentation.num_leaves(),
        dd.fragmentation.template.negation_count()
    );

    assert_eq!(brute, ext, "extensional must equal ground truth");
    assert_eq!(brute, int, "intensional must equal ground truth");
    assert_eq!(brute, reweighted, "engine must equal ground truth");

    // Scenario sweep, sharded: one compile amortized across a workload
    // fanned over 4 worker threads walking the same Arc-shared circuit.
    let scenarios: Vec<_> = (0..8u32)
        .map(|s| {
            let mut scenario = tid.clone();
            scenario
                .set_prob(TupleId(s % 3), BigRational::from_ratio(1, u64::from(s) + 2))
                .expect("valid probability");
            scenario
        })
        .collect();
    let sharded = engine
        .evaluate_batch_sharded(&q, &scenarios, 4)
        .expect("same shape as the cached circuit");
    let sequential = engine.evaluate_batch(&q, &scenarios).expect("tractable");
    assert_eq!(sharded, sequential, "sharding never changes the bits");
    println!(
        "\nsharded batch: {}  (bit-identical to sequential ✓)",
        engine.stats().last_batch.expect("batch just ran"),
    );

    // Floating-point batches drive the lane-batched evaluation kernel:
    // one circuit walk per 8 scenarios instead of one per scenario,
    // bit-identical to the scalar loop (DESIGN.md §6). The stats split
    // the batch's time into compiling vs walking.
    let lane = engine
        .evaluate_batch_f64(&q, &scenarios)
        .expect("same shape as the cached circuit");
    let scalar: Vec<f64> = scenarios
        .iter()
        .map(|s| engine.evaluate_f64(&q, s).expect("cached"))
        .collect();
    assert_eq!(lane, scalar, "lane batching never changes the bits");
    println!(
        "lane-batched f64 batch: {} scenarios in {} kernel call(s); \
         lifetime compile {} ns vs walk {} ns",
        scenarios.len(),
        engine.stats().lane_kernel_calls,
        engine.stats().compile_nanos(),
        engine.stats().walk_nanos,
    );

    // Persistence: snapshot the compiled circuits (versioned binary
    // format, DESIGN.md §5) and warm-start a replica engine — zero
    // compiles, bit-identical answers under any re-weighting.
    let snapshot = engine.save_cache();
    let mut replica = PqeEngine::new();
    let report = replica.load_cache(&snapshot).expect("own snapshot loads");
    let replayed = replica.evaluate(&q, &tid).expect("warm replica");
    assert_eq!(replayed, reweighted, "loaded circuit must match exactly");
    assert_eq!(
        replica.stats().cache_misses,
        0,
        "no compiles on the replica"
    );
    println!(
        "\nwarm start: {} artifact(s), {} gates from a {}-byte snapshot \
         (0 compiles on replay ✓)",
        report.artifacts,
        report.gates,
        snapshot.len(),
    );

    // The hard region: an H₀-style query (e(φ) ≠ 0, #P-hard) on an
    // instance whose 2^40 possible worlds no brute-force budget can
    // touch. With sampling enabled the engine returns an anytime
    // (ε, δ)-bounded Monte-Carlo estimate instead of refusing
    // (DESIGN.md §7) — deterministic per seed, shard-invariant.
    let hard_q = HQuery::new(BoolFn::from_fn(3, |v| v != 0));
    let hard_tid = uniform_tid(complete_database(2, 4), BigRational::from_ratio(1, 4));
    let mut sampler = PqeEngine::with_config(EngineConfig {
        sampling: Some(SamplingConfig {
            eps: 0.02,
            delta: 1e-3,
            ..SamplingConfig::default()
        }),
        ..EngineConfig::default()
    });
    println!(
        "\nhard query planner: {}",
        sampler.explain(&hard_q, &hard_tid)
    );
    let est = sampler
        .estimate(&hard_q, &hard_tid)
        .expect("sampling is enabled");
    println!(
        "hard query estimate: {:.4} ± {} (δ = {}) from {} samples in {:?}",
        est.value, est.eps, est.delta, est.samples, est.elapsed,
    );

    // PQE-as-a-service (DESIGN.md §10): the same engine behind a
    // concurrent front door — bounded admission queue, worker pool
    // walking Arc-shared artifacts, snapshot endpoint — with answers
    // bit-identical to the direct calls above. `ServeHandle` clones
    // are the per-client-thread entry point; `intext-serve --tcp`
    // exposes the same requests over a socket.
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("default engine config is valid");
    let handle = server.handle();
    let served = handle
        .evaluate(&q, &tid)
        .expect("same query, same instance");
    assert_eq!(served, int, "served answers are bit-identical");
    let served_snapshot = handle.snapshot().expect("snapshot endpoint");
    let stats = server.shutdown();
    println!(
        "\nserved: {} == direct engine ✓  ({} queries via the server, \
         {}-byte snapshot for replicas)",
        served,
        stats.queries,
        served_snapshot.len(),
    );

    println!(
        "\nall routes agree exactly ✓  (≈ {:.6})\nengine stats: {}",
        int.to_f64(),
        engine.stats(),
    );
}
