//! Regenerates the paper's figures as text (EXPERIMENTS.md: E1, E3–E6).
//!
//! * Figure 2 — the CNF lattice of `φ9` with Möbius values;
//! * Figure 3 — the colored valuation graph `G_V[φ9]`;
//! * Figure 4 — a machine-checked chainswap trace;
//! * Figure 5 — the `φ_no-PM` witness (e = 0, no perfect matching on
//!   either side);
//! * Figure 7 — pass `--k5` to search the 7.8M monotone functions on six
//!   variables for the minimal `φ_one-neg` witness (several minutes in
//!   release mode).
//!
//! Run with: `cargo run --release --example paper_figures [--k5]`

use intext::boolfn::{phi9, phi_no_pm, BoolFn, Valuation};
use intext::core::{Step, StepKind};
use intext::lattice::{cnf_lattice, render_hasse};
use intext::matching::{find_minimal_one_neg, render_colored_graph, sat_has_pm, unsat_has_pm};

fn main() {
    let k5 = std::env::args().any(|a| a == "--k5");

    println!("=== Figure 2: Hasse diagram of L^φ9_CNF with Möbius values ===\n");
    let lat = cnf_lattice(&phi9());
    print!("{}", render_hasse(&lat));
    println!(
        "µ(0̂, 1̂) = {}  → PQE(Q_φ9) is PTIME (Example 3.6)\n",
        lat.mobius_bottom_top()
    );

    println!("=== Figure 3: the colored graph G_V[φ9] (● = satisfying) ===\n");
    print!("{}", render_colored_graph(&phi9()));
    println!();

    println!("=== Figure 4: a chainswap along a 5-node path ===\n");
    figure_4_trace();

    println!("\n=== Figure 5: φ_no-PM — e(φ)=0 but no one-sided matching ===\n");
    let f = phi_no_pm();
    print!("{}", render_colored_graph(&f));
    println!("e(φ_no-PM)              = {}", f.euler_characteristic());
    println!("colored side has PM?    = {}", sat_has_pm(&f));
    println!("non-colored side has PM?= {}", unsat_has_pm(&f));
    println!(
        "(isolated colored {} / isolated non-colored {})",
        Valuation(0b11000),
        Valuation(0b11001)
    );

    if k5 {
        println!("\n=== Figure 7: searching for φ_one-neg at k = 5 (7.8M functions) ===\n");
        match find_minimal_one_neg(6) {
            Some(g) => {
                println!("minimal monotone witness with e=0, colored side unmatched:");
                println!("  #SAT = {}", g.sat_count());
                println!(
                    "  colored PM: {}   non-colored PM: {}",
                    sat_has_pm(&g),
                    unsat_has_pm(&g)
                );
                let sat: Vec<String> = g.sat_iter().map(|v| Valuation(v).to_string()).collect();
                println!("  SAT = {}", sat.join(" "));
            }
            None => println!("no witness found (unexpected — the paper exhibits one)"),
        }
    } else {
        println!("\n(skipping Figure 7's k = 5 search; pass --k5 to run it)");
    }
}

fn figure_4_trace() {
    // The path ν0 ─ ν1 ─ ν2 ─ ν3 ─ ν4 of Figure 4, with the colored
    // token at ν4 chainswapped to ν0.
    let path = [0b001u32, 0b000, 0b010, 0b110, 0b100];
    let mut cur = BoolFn::from_sat(3, [path[4]]);
    let steps = [
        Step {
            kind: StepKind::Add,
            nu: path[0],
            var: 0,
        },
        Step {
            kind: StepKind::Add,
            nu: path[2],
            var: 2,
        },
        Step {
            kind: StepKind::Remove,
            nu: path[1],
            var: 1,
        },
        Step {
            kind: StepKind::Remove,
            nu: path[3],
            var: 1,
        },
    ];
    let render = |f: &BoolFn| {
        path.iter()
            .map(|&v| {
                if f.eval(v) {
                    format!("●{}", Valuation(v))
                } else {
                    format!("○{}", Valuation(v))
                }
            })
            .collect::<Vec<_>>()
            .join(" ─ ")
    };
    println!("    {}", render(&cur));
    for s in steps {
        cur = s.apply(&cur).expect("figure 4 steps are valid");
        let arrow = match s.kind {
            StepKind::Add => "∼▷⁺",
            StepKind::Remove => "∼▷⁻",
        };
        println!("{arrow} {}", render(&cur));
    }
}
