//! The `#P`-hardness side of the dichotomy, made executable.
//!
//! Every hardness result the paper relies on (Proposition 3.5's hard
//! branch → Corollary 3.9 → Proposition 6.4) bottoms out in Dalvi and
//! Suciu's reduction from **#PP2CNF** — counting models of
//! `Φ = ⋀_{(i,j)∈E} (x_i ∨ y_j)` — to probabilistic evaluation of
//! `q = ∃x∃y R(x) ∧ S_1(x,y) ∧ T(y)`. This example runs the reduction:
//! it counts PP2CNF models *through a PQE oracle* and checks the answer
//! against direct enumeration.
//!
//! Run with: `cargo run --release --example hardness_reduction`

use intext::boolfn::BoolFn;
use intext::core::{classify, hardness_witness, steps_between};
use intext::query::Pp2Cnf;

fn main() {
    println!("#PP2CNF → PQE reduction (the root of the paper's red regions)\n");
    println!("query: {}\n", Pp2Cnf::triangle_query());

    let formulas = [
        ("single clause", Pp2Cnf::new(1, 1, vec![(0, 0)])),
        ("path of 3", Pp2Cnf::new(2, 2, vec![(0, 0), (1, 0), (1, 1)])),
        (
            "4-cycle",
            Pp2Cnf::new(2, 2, vec![(0, 0), (1, 0), (1, 1), (0, 1)]),
        ),
        (
            "K_{3,3}",
            Pp2Cnf::new(
                3,
                3,
                (0..3).flat_map(|i| (0..3).map(move |j| (i, j))).collect(),
            ),
        ),
    ];
    println!(
        "{:<14} {:>10} {:>14} {:>14}",
        "formula", "2^(m+n)", "direct #Φ", "via PQE"
    );
    for (name, f) in &formulas {
        let direct = f.count_models_direct();
        let via = f.count_models_via_pqe();
        println!(
            "{name:<14} {:>10} {:>14} {:>14}  {}",
            1u64 << (f.num_x + f.num_y),
            direct.to_string(),
            via.to_string(),
            if direct == via { "✓" } else { "✗ MISMATCH" }
        );
        assert_eq!(direct, via);
    }

    println!("\nPQE(q_triangle) counts PP2CNF models — and #PP2CNF is #P-complete,");
    println!("so any query that can simulate it inherits the hardness. Inside the");
    println!("H-framework, the hardness propagates along the paper's Theorem 6.2:");

    // Proposition 6.4 in action: a non-monotone hard function and its
    // monotone hardness witness, connected by validated steps.
    let phi = BoolFn::from_sat(3, [0b000u32, 0b001, 0b010]); // e = -1
    let witness = hardness_witness(&phi).expect("within monotone Euler range");
    println!(
        "\nφ (non-monotone, e = {}) is in region {:?};",
        phi.euler_characteristic(),
        classify(&phi)
    );
    println!(
        "its monotone hardness witness has e = {} and region {:?};",
        witness.euler_characteristic(),
        classify(&witness)
    );
    let steps = steps_between(&phi, &witness).expect("equal Euler characteristic");
    println!(
        "and {} validated ∼▷± steps connect the two (Theorem 6.2(a) reduction).",
        steps.len()
    );
}
