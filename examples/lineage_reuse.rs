//! The knowledge-compilation payoff (paper, Introduction): once the
//! lineage is compiled into a d-D, it can be *reused* — update tuple
//! probabilities and re-evaluate in linear time, count models, evaluate
//! concrete worlds — without touching the database or recompiling.
//!
//! Run with: `cargo run --release --example lineage_reuse`

use intext::boolfn::phi9;
use intext::core::compile_dd;
use intext::lineage::compile_degenerate_obdd;
use intext::numeric::BigRational;
use intext::query::HQuery;
use intext::tid::{complete_database, random_tid, TupleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(404);
    let db = complete_database(3, 4);
    let mut tid = random_tid(db, 100, &mut rng);
    println!("database: complete, k = 3, domain 4 → {} tuples", tid.len());

    // Compile once...
    let t0 = Instant::now();
    let dd = compile_dd(&phi9(), tid.database()).unwrap();
    println!(
        "compiled Lin(Q_φ9, D) once in {:.2?}: {}",
        t0.elapsed(),
        dd.stats()
    );

    // ...evaluate many times under changing probabilities.
    let t0 = Instant::now();
    let mut last = BigRational::zero();
    const UPDATES: u32 = 25;
    for round in 0..UPDATES {
        let id = TupleId(round % tid.len() as u32);
        tid.set_prob(id, BigRational::from_ratio(i64::from(round % 99 + 1), 100))
            .unwrap();
        last = dd.probability_exact(&tid);
    }
    println!(
        "{UPDATES} probability updates + exact re-evaluations in {:.2?} (no recompilation)",
        t0.elapsed()
    );
    println!("final Pr(Q_φ9) = {:.6}", last.to_f64());

    // Concrete-world evaluation on the compiled circuit.
    let all_present = (1u64 << 20) - 1; // more tuples than bits? guard below
    if tid.len() < 64 {
        let full_world = (1u64 << tid.len()) - 1;
        println!(
            "\nworld queries on the same circuit: D itself satisfies Q_φ9? {}",
            dd.eval_world(full_world)
        );
        println!("the empty world satisfies Q_φ9? {}", dd.eval_world(0));
        let _ = all_present;
    }

    // Model counting on an OBDD lineage (for a degenerate sub-query).
    let q_h0 = intext::boolfn::BoolFn::var(4, 0); // Q = h_{3,0}
    let lin = compile_degenerate_obdd(&q_h0, tid.database()).unwrap();
    let models = lin.manager.model_count(lin.root);
    println!(
        "\nOBDD lineage of h_{{3,0}}: {} nodes, {} satisfying worlds over its {}-tuple scope",
        lin.size(),
        models,
        lin.manager.order().len()
    );
    let q = HQuery::new(q_h0);
    println!("(query reads: {})", intext::query::h_cq(3, 0));
    drop(q);
}
