//! E14: a census of Figure 1 — classify *every* Boolean function on
//! `V = {0..k}` (k ≤ 3) into the paper's regions, and verify the
//! footnote-6 closed form for the tractable region's size.
//!
//! Run with: `cargo run --release --example dichotomy_map`

use intext::boolfn::{enumerate, small, BoolFn};
use intext::core::{classify, Region};
use intext::numeric::binomial;

fn main() {
    println!("Figure 1 census: regions of the H-queries by defining function φ\n");
    for n in 2..=4u8 {
        let k = n - 1;
        let mut counts = std::collections::HashMap::new();
        for t in enumerate::all_tables(n) {
            let phi = BoolFn::from_table_u64(n, t);
            *counts.entry(classify(&phi)).or_insert(0u64) += 1;
        }
        let total: u64 = counts.values().sum();
        println!("k = {k} ({} functions):", total);
        for region in [
            Region::DegenerateObdd,
            Region::ZeroEulerDD,
            Region::HardMonotone,
            Region::HardByTransfer,
            Region::ConjecturedHard,
        ] {
            let c = counts.get(&region).copied().unwrap_or(0);
            let tag = if region.is_tractable() {
                "PTIME"
            } else if region.is_proven_hard() {
                "#P-hard"
            } else {
                "conjectured #P-hard"
            };
            println!("  {region:?}: {c}  [{tag}]");
        }
        // Footnote 6: tractable region = #{φ : e(φ)=0} = C(2^{k+1}, 2^k).
        let tractable = counts.get(&Region::DegenerateObdd).copied().unwrap_or(0)
            + counts.get(&Region::ZeroEulerDD).copied().unwrap_or(0);
        let expect = binomial(1u64 << n, 1u64 << k);
        println!(
            "  tractable (e=0) = {tractable}; footnote-6 closed form C(2^{}, 2^{k}) = {expect}  {}",
            n,
            if expect.to_u64() == Some(tractable) {
                "✓"
            } else {
                "✗ MISMATCH"
            }
        );
        println!();
    }

    println!("Monotone-only census (the H+ fragment, Dalvi–Suciu dichotomy):\n");
    for n in 2..=5u8 {
        let k = n - 1;
        let tables = enumerate::monotone_tables(n);
        let total = tables.len();
        let safe = tables.iter().filter(|&&t| small::euler(n, t) == 0).count();
        println!(
            "k = {k}: {total} UCQs (M({n}) = {}), safe {safe}, #P-hard {}",
            enumerate::DEDEKIND[usize::from(n) - 1],
            total - safe
        );
    }
    println!("\nnon-isomorphic (mod variable permutation) monotone counts:");
    for n in 2..=5u8 {
        let classes = enumerate::non_isomorphic_count(n, enumerate::monotone_tables(n));
        println!("  k = {}: {classes} classes", n - 1);
    }
}
