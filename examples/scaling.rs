//! E15: the dichotomy's *shape* — how the three engines scale with the
//! database.
//!
//! For the safe query `Q_φ9`, the extensional engine and the intensional
//! d-D pipeline are polynomial in the domain size, while brute force over
//! possible worlds is exponential in the tuple count (and is the only
//! generally-correct method for #P-hard queries). The absolute numbers
//! are machine-dependent; the crossover and the growth *shapes* are what
//! the paper's complexity claims predict.
//!
//! Run with: `cargo run --release --example scaling`

use std::time::Instant;

use intext::boolfn::phi9;
use intext::core::compile_dd;
use intext::extensional::pqe_extensional_f64;
use intext::query::{pqe_brute_force_f64, HQuery};
use intext::tid::{complete_database, random_tid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("query: Q_φ9 (safe, k = 3) on complete databases of growing domain\n");
    println!(
        "{:>6} {:>8} {:>16} {:>16} {:>16} {:>12}",
        "domain", "tuples", "brute force", "extensional", "intensional", "d-D gates"
    );

    let mut rng = StdRng::seed_from_u64(0xD1C7);
    for n in 1..=12u32 {
        let db = complete_database(3, n);
        let tuples = db.len();
        let tid = random_tid(db, 10, &mut rng);
        let q = HQuery::new(phi9());

        let brute = if tuples <= 24 {
            let t0 = Instant::now();
            let p = pqe_brute_force_f64(&q, &tid).unwrap();
            Some((p, t0.elapsed()))
        } else {
            None
        };

        let t0 = Instant::now();
        let ext = pqe_extensional_f64(&q, &tid).unwrap();
        let ext_time = t0.elapsed();

        let t0 = Instant::now();
        let dd = compile_dd(&phi9(), tid.database()).unwrap();
        let int = dd.probability_f64(&tid);
        let int_time = t0.elapsed();

        let brute_cell = match &brute {
            Some((_, d)) => format!("{d:>14.2?}"),
            None => format!("{:>14}", "(2^tuples…)"),
        };
        println!(
            "{n:>6} {tuples:>8} {brute_cell:>16} {:>16} {:>16} {:>12}",
            format!("{ext_time:.2?}"),
            format!("{int_time:.2?}"),
            dd.stats().gates
        );

        if let Some((pb, _)) = brute {
            assert!((pb - ext).abs() < 1e-9, "brute {pb} vs extensional {ext}");
        }
        assert!(
            (ext - int).abs() < 1e-9,
            "extensional {ext} vs intensional {int}"
        );
    }

    println!("\nbrute force doubles per extra tuple; the two polynomial engines crawl up");
    println!("gently — that gap is the content of the dichotomy (safe side).");
}
