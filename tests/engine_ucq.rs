//! The UCQ front door, end to end:
//!
//! * **Differential on safe UCQs** — for every safe query in the
//!   corpus, lifted inference ≡ grounded circuit ≡ brute force
//!   bit-identically on exact rationals (and within 1e-12 on f64),
//!   both at the function level and through `PqeEngine::evaluate`.
//! * **H-shape recognition** — all 272 Boolean functions with `k ≤ 2`,
//!   rendered to UCQ text and re-parsed, land on the *same* plans and
//!   cached artifacts as their native `HQuery` twins: zero extra
//!   compiles, asserted via `EngineStats`.
//! * **Parser robustness** — proptest: pretty-print → parse is the
//!   identity on ASTs, and arbitrary byte soup never panics.

use intext::boolfn::BoolFn;
use intext::engine::PqeEngine;
use intext::numeric::BigRational;
use intext::query::{
    ground_circuit_probability, ground_circuit_probability_f64, h_query_text, is_safe_ucq,
    lifted_probability, lifted_probability_f64, parse_query, ucq_brute_force, ucq_brute_force_f64,
    HQuery, Query,
};
use intext::tid::{
    complete_database, random_database, random_tid, uniform_tid, DbGenConfig, Tid, Vocabulary,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

/// A reproducible small instance: dense enough that queries are rarely
/// trivially 0/1, small enough that brute force (2^tuples worlds) is
/// instant.
fn corpus_tid(k: u8, seed: u64) -> Tid {
    let mut rng = StdRng::seed_from_u64(common::BASE_SEED ^ seed);
    let db = random_database(
        &DbGenConfig {
            k,
            domain_size: 2,
            density: 0.8,
            prob_denominator: 7,
        },
        &mut rng,
    );
    random_tid(db, 7, &mut rng)
}

/// The corpus: query text over the canonical `R/S1/S2/T` names at
/// `k = 2`, with the safety verdict the Dalvi–Suciu test must reach.
/// Spellings deliberately mix shared variables, constants, unions, and
/// independent leaves.
const CORPUS: &[(&str, bool)] = &[
    // Single atoms and constant-bound atoms: always safe.
    ("R(x)", true),
    ("T(y)", true),
    ("S1(x,y)", true),
    ("S2(x,x)", true),
    ("R(0)", true),
    ("S1(0,y)", true),
    ("S1(x,1)", true),
    // Hierarchical CQs: safe.
    ("R(x), S1(x,y)", true),
    ("S2(x,y), T(y)", true),
    ("S1(0,y), T(y)", true),
    ("R(x), S1(x,y), S2(x,z)", true),
    // Independent leaves (each `&`-operand closes its own scope).
    ("R(x) & T(y)", true),
    ("R(x) & S1(x,y)", true),
    ("R(x) | T(y)", true),
    ("S1(0,0) | S1(1,1)", true),
    // The unsafe disjunct is subsumed by `R(x)` (there is a containment
    // homomorphism), so normalization reduces the union to `R(x)`: safe.
    ("R(x), S1(x,y), T(y) | R(x)", true),
    // The canonical unsafe CQ and friends.
    ("R(x), S1(x,y), T(y)", false),
    ("S1(x,y), S2(y,z), T(z)", false),
    ("R(x), S1(x,y), T(y) | S2(x,x)", false),
];

/// Part 1a, function level: on every safe corpus query, the three
/// evaluators agree bit for bit (exact) and to 1e-12 (f64).
#[test]
fn safe_ucqs_lifted_equals_grounded_equals_brute() {
    let voc = Vocabulary::h(2);
    let mut safe_checked = 0;
    for &(text, expect_safe) in CORPUS {
        let expr = parse_query(text, &voc).unwrap();
        let ucq = expr
            .to_ucq()
            .expect("the corpus is negation-free")
            .normalize();
        assert_eq!(is_safe_ucq(&ucq), expect_safe, "safety of {text}");
        if !expect_safe {
            assert!(lifted_probability(&ucq, &corpus_tid(2, 0)).is_none());
            continue;
        }
        for seed in 0..5 {
            let tid = corpus_tid(2, seed);
            let lifted = lifted_probability(&ucq, &tid).expect("safe queries lift");
            let grounded = ground_circuit_probability(&expr, &tid);
            let brute = ucq_brute_force(&expr, &tid).unwrap();
            assert_eq!(lifted, brute, "lifted vs brute on {text} (seed {seed})");
            assert_eq!(grounded, brute, "grounded vs brute on {text} (seed {seed})");
            let lifted64 = lifted_probability_f64(&ucq, &tid).unwrap();
            let grounded64 = ground_circuit_probability_f64(&expr, &tid);
            let brute64 = ucq_brute_force_f64(&expr, &tid).unwrap();
            assert!(
                (lifted64 - brute64).abs() <= 1e-12,
                "{text}: {lifted64} vs {brute64}"
            );
            assert!(
                (grounded64 - brute64).abs() <= 1e-12,
                "{text}: {grounded64} vs {brute64}"
            );
        }
        safe_checked += 1;
    }
    assert!(
        safe_checked >= 12,
        "corpus shrank: {safe_checked} safe queries"
    );
}

/// Part 1b, engine level: the same corpus through the public API —
/// every query (safe *and* unsafe-but-small) answers exactly like
/// brute force, under both the exact and f64 entry points.
#[test]
fn engine_answers_match_brute_force_on_the_corpus() {
    let voc = Vocabulary::h(2);
    let mut engine = PqeEngine::new();
    for &(text, _) in CORPUS {
        let q = Query::parse(text, &voc).unwrap();
        let (expr, _) = q.general().expect("parsed queries are general");
        let expr = expr.clone();
        for seed in 0..3 {
            let tid = corpus_tid(2, seed);
            let p = engine.evaluate(&q, &tid).unwrap();
            assert_eq!(
                p,
                ucq_brute_force(&expr, &tid).unwrap(),
                "{text} (seed {seed})"
            );
            let p64 = engine.evaluate_f64(&q, &tid).unwrap();
            let brute64 = ucq_brute_force_f64(&expr, &tid).unwrap();
            assert!((p64 - brute64).abs() <= 1e-12, "{text}: {p64} vs {brute64}");
        }
    }
    assert!(
        engine.stats().lifted_plans > 0,
        "the corpus exercised lifted plans"
    );
    assert!(
        engine.stats().ground_plans > 0,
        "the corpus exercised ground plans"
    );
}

/// Part 2: every Boolean function with `k ≤ 2` (16 + 256 = 272),
/// submitted as parsed UCQ text, is recognized as H-shaped and served
/// by the artifacts its native `HQuery` twin already compiled — same
/// answers, same plans, zero extra compiles.
#[test]
fn all_272_h_queries_round_trip_through_text_with_zero_extra_compiles() {
    let mut engine = PqeEngine::new();
    let mut round_trips = 0;
    for k in 1..=2u8 {
        // Small instances keep the hard region inside the brute-force
        // budget so every φ is exactly evaluable.
        let domain = if k == 1 { 2 } else { 1 };
        let tid = uniform_tid(complete_database(k, domain), BigRational::from_ratio(3, 7));
        let voc = Vocabulary::h(k);
        let tables = 1u64 << (1 << (k + 1));
        for table in 0..tables {
            let h = HQuery::new(BoolFn::from_table_u64(k + 1, table));
            let native_plan = engine.plan(&h, &tid).unwrap();
            let native = engine.evaluate(&h, &tid).unwrap();
            let compiles_after_native = engine.stats().cache_misses;

            let parsed = Query::parse(&h_query_text(&h), &voc).unwrap();
            assert!(
                parsed.as_h().is_some() || parsed.general().is_some(),
                "table {table:#x} at k={k} parsed to nothing"
            );
            assert_eq!(
                engine.plan(&parsed, &tid).unwrap(),
                native_plan,
                "table {table:#x} at k={k} routed differently as text"
            );
            assert_eq!(
                engine.evaluate(&parsed, &tid).unwrap(),
                native,
                "table {table:#x} at k={k} answered differently as text"
            );
            assert_eq!(
                engine.stats().cache_misses,
                compiles_after_native,
                "table {table:#x} at k={k} compiled again as text"
            );
            round_trips += 1;
        }
    }
    assert_eq!(round_trips, 272);
    // Recognition means *reuse*: the parsed pass produced cache hits on
    // every cacheable plan, never a second artifact.
    assert!(engine.stats().cache_hits >= engine.stats().cache_misses);
}

// ---------------------------------------------------------------- part 3

/// A random term over a small variable pool plus constants.
fn gen_term(rng: &mut StdRng) -> String {
    match rng.random_range(0..6u32) {
        0 => "x".into(),
        1 => "y".into(),
        2 => "z".into(),
        3 => "w".into(),
        c => (c - 4).to_string(),
    }
}

/// A random atom over the canonical k = 2 names.
fn gen_atom(rng: &mut StdRng) -> String {
    match rng.random_range(0..4u32) {
        0 => format!("R({})", gen_term(rng)),
        1 => format!("T({})", gen_term(rng)),
        2 => format!("S1({},{})", gen_term(rng), gen_term(rng)),
        _ => format!("S2({},{})", gen_term(rng), gen_term(rng)),
    }
}

/// A random query in the UCQ grammar: comma-joined atoms at the
/// leaves, `&`/`|`/`!`/parens above.
fn gen_query_text(rng: &mut StdRng, depth: u32) -> String {
    if depth == 0 || rng.random_range(0..3u32) == 0 {
        let atoms: Vec<String> = (0..rng.random_range(1..=3u32))
            .map(|_| gen_atom(rng))
            .collect();
        return atoms.join(", ");
    }
    match rng.random_range(0..3u32) {
        0 => format!(
            "({}) & ({})",
            gen_query_text(rng, depth - 1),
            gen_query_text(rng, depth - 1)
        ),
        1 => format!(
            "({}) | ({})",
            gen_query_text(rng, depth - 1),
            gen_query_text(rng, depth - 1)
        ),
        _ => format!("!({})", gen_query_text(rng, depth - 1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pretty-print → parse is the identity on parsed ASTs (parsing
    /// canonicalizes variables, so one round trip reaches the fixpoint).
    #[test]
    fn render_then_parse_is_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = gen_query_text(&mut rng, 3);
        let voc = Vocabulary::h(2);
        let expr = parse_query(&text, &voc).expect("generated text is grammatical");
        let q = Query::from_expr(expr.clone(), voc.clone());
        let rendered = q.to_string();
        let reparsed = Query::parse(&rendered, &voc).expect("rendered text re-parses");
        prop_assert_eq!(
            rendered.clone(),
            reparsed.to_string(),
            "render/parse did not reach a fixpoint for {}", text
        );
        // And the reparse denotes the same query: identical required_k,
        // H-recognition verdict, and (for general queries) AST.
        prop_assert_eq!(q.required_k(), reparsed.required_k());
        prop_assert_eq!(q.as_h().is_some(), reparsed.as_h().is_some());
        if let (Some((a, _)), Some((b, _))) = (q.general(), reparsed.general()) {
            prop_assert_eq!(a, b, "AST changed across render/parse for {}", text);
        }
    }

    /// The parser is total: arbitrary byte soup is `Ok` or a typed
    /// `ParseError`, never a panic.
    #[test]
    fn random_bytes_never_panic_the_parser(seed in any::<u64>(), len in 0usize..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u32) as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_query(&text, &Vocabulary::h(2));
        let _ = Query::parse(&text, &Vocabulary::h(1));
    }

    /// Near-miss strings (grammar-shaped fragments cut mid-token) are
    /// equally safe.
    #[test]
    fn mangled_query_text_never_panics(seed in any::<u64>(), cut in 0usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = gen_query_text(&mut rng, 3);
        let mangled: String = text.chars().take(cut).collect();
        let _ = parse_query(&mangled, &Vocabulary::h(2));
    }
}
