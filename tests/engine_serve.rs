//! Differential concurrency + saturation harness for the serve layer
//! (`crates/serve`, DESIGN.md §10).
//!
//! The serve layer's claim is the strongest kind a concurrent front
//! door can make: N clients hammering one shared engine get answers
//! **bit-identical** to a sequential [`PqeEngine`] fed the same
//! requests — exact rationals `==`, f64s equal to the bit, estimates
//! sample-for-sample — and the merged server statistics equal the
//! sequential engine's on every count field. Overload shows up *only*
//! as typed backpressure ([`ServeError::QueueFull`] /
//! [`ServeError::DeadlineExceeded`] / [`ServeError::BudgetExceeded`]):
//! never a wrong answer, never a panic, never a deadlock.
//!
//! The tests prove it differentially:
//!
//! * the headline sweep runs **all 272 Boolean functions with
//!   `k ≤ 2`** (16 on two variables, 256 on three) through concurrent
//!   clients, exact and f64, under two configs that together cover
//!   every route — OBDD, d-D, extensional, brute force, and seeded
//!   Monte-Carlo sampling — and diffs both answers and stats against a
//!   sequential engine;
//! * batch and sharded-batch requests diff against the engine's own
//!   batch paths (including lane-kernel call counts: the server
//!   replicates the engine's chunk math);
//! * a **deterministic saturation** test wedges the single worker on a
//!   brute-force query, fills the admission queue, and accounts for
//!   every submission: admitted ones all resolve (answer, deadline
//!   rejection, or client cancel), excess ones are `QueueFull` — and a
//!   randomized hammer re-checks the same partition under racing
//!   clients;
//! * live tuple updates race evaluations through the shared lock,
//!   keeping `cache_gates() ≤ budget` throughout and ending patched ≡
//!   fresh (the PR 7 oracle discipline, now under concurrency);
//! * TCP and Unix-socket transports round-trip answers losslessly.
//!
//! CI runs this binary under both `RUST_TEST_THREADS=1` and the
//! default parallel mode: the serve layer spawns its own threads, so
//! single-threaded test scheduling must not be load-bearing.
//!
//! [`ServeError::QueueFull`]: intext_serve::ServeError::QueueFull
//! [`ServeError::DeadlineExceeded`]: intext_serve::ServeError::DeadlineExceeded
//! [`ServeError::BudgetExceeded`]: intext_serve::ServeError::BudgetExceeded

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use intext_boolfn::BoolFn;
use intext_engine::{EngineConfig, EngineStats, Plan, PqeEngine, SamplingConfig};
use intext_numeric::BigRational;
use intext_query::HQuery;
use intext_serve::{listen_tcp, RemoteClient, Request, Response, ServeConfig, ServeError, Server};
use intext_tid::{Database, Tid, TupleDesc};

/// Instance-size cap shared with `tests/engine_incremental.rs`: at most
/// `2^7` possible worlds keeps full-corpus sweeps fast in debug builds.
const TUPLE_CAP: usize = 7;

/// Clients in the concurrent sweeps.
const CLIENTS: usize = 4;

/// SplitMix64 — same reproducible-from-one-u64 discipline as the other
/// harnesses.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rational(state: &mut u64) -> BigRational {
    let den = 1 + mix(state) % 6;
    let num = mix(state) % (den + 1);
    BigRational::from_ratio(num as i64, den)
}

/// Every tuple the vocabulary `(k, domain)` admits.
fn universe(k: u8, domain: u32) -> Vec<TupleDesc> {
    let mut all = Vec::new();
    for a in 0..domain {
        all.push(TupleDesc::R(a));
    }
    for i in 1..=k {
        for a in 0..domain {
            for b in 0..domain {
                all.push(TupleDesc::S(i, a, b));
            }
        }
    }
    for b in 0..domain {
        all.push(TupleDesc::T(b));
    }
    all
}

/// A TID with exactly `n` tuples of the `(k, domain)` universe, chosen
/// and weighted by the seeded stream — fixed size so each test pins the
/// routes it means to exercise (brute force under the budget, sampling
/// above it).
fn sized_tid(state: &mut u64, k: u8, domain: u32, n: usize) -> Tid {
    let all = universe(k, domain);
    assert!(
        n <= all.len(),
        "universe of k={k} domain={domain} has only {} tuples",
        all.len()
    );
    let mut tid = Tid::new(Database::new(k, domain), Vec::new()).unwrap();
    for &t in &all {
        if tid.len() < n && mix(state).is_multiple_of(2) {
            tid.insert(t, rational(state)).unwrap();
        }
    }
    for &t in &all {
        if tid.len() >= n {
            break;
        }
        if !tid.database().iter().any(|(_, have)| have == t) {
            tid.insert(t, rational(state)).unwrap();
        }
    }
    tid
}

/// All `2^(2^(k+1))` Boolean functions on `k + 1` variables.
fn all_functions(k: u8) -> Vec<BoolFn> {
    let tables: u64 = 1 << (1u64 << (k + 1));
    (0..tables)
        .map(|t| BoolFn::from_table_u64(k + 1, t))
        .collect()
}

/// Asserts every *count* field of the merged server stats equals the
/// sequential engine's. Wall-time fields and the `last`/`last_batch`
/// echoes are excluded by design: they are order- or clock-dependent
/// (see the `EngineStats::last_batch` docs), while counts must be
/// exactly order-independent.
fn assert_counts_equal(server: &EngineStats, seq: &EngineStats, context: &str) {
    assert_eq!(server.queries, seq.queries, "{context}: queries");
    assert_eq!(server.cache_hits, seq.cache_hits, "{context}: cache_hits");
    assert_eq!(
        server.cache_misses, seq.cache_misses,
        "{context}: cache_misses"
    );
    assert_eq!(
        server.cache_evictions, seq.cache_evictions,
        "{context}: cache_evictions"
    );
    assert_eq!(
        server.artifact_loads, seq.artifact_loads,
        "{context}: artifact_loads"
    );
    assert_eq!(server.obdd_plans, seq.obdd_plans, "{context}: obdd_plans");
    assert_eq!(server.dd_plans, seq.dd_plans, "{context}: dd_plans");
    assert_eq!(
        server.extensional_plans, seq.extensional_plans,
        "{context}: extensional_plans"
    );
    assert_eq!(
        server.brute_force_plans, seq.brute_force_plans,
        "{context}: brute_force_plans"
    );
    assert_eq!(
        server.sample_plans, seq.sample_plans,
        "{context}: sample_plans"
    );
    assert_eq!(
        server.samples_drawn, seq.samples_drawn,
        "{context}: samples_drawn"
    );
    assert_eq!(
        server.extensional_memo_hits, seq.extensional_memo_hits,
        "{context}: extensional_memo_hits"
    );
    assert_eq!(
        server.lane_kernel_calls, seq.lane_kernel_calls,
        "{context}: lane_kernel_calls"
    );
    assert_eq!(
        server.patches_applied, seq.patches_applied,
        "{context}: patches_applied"
    );
    // Histograms: the *number* of recordings per route must match (the
    // recorded latencies themselves are wall-clock, so only counts are
    // deterministic).
    for (route, s, q) in [
        ("obdd", &server.route_latency.obdd, &seq.route_latency.obdd),
        ("dd", &server.route_latency.dd, &seq.route_latency.dd),
        (
            "extensional",
            &server.route_latency.extensional,
            &seq.route_latency.extensional,
        ),
        (
            "brute_force",
            &server.route_latency.brute_force,
            &seq.route_latency.brute_force,
        ),
        (
            "sample",
            &server.route_latency.sample,
            &seq.route_latency.sample,
        ),
    ] {
        assert_eq!(s.count(), q.count(), "{context}: {route} latency count");
    }
}

/// The circuit-leaning config: tiny brute-force budget plus seeded
/// sampling, so the `k ≤ 2` sweep on a 7-tuple instance routes through
/// OBDD, d-D, brute force (small instances), *and* Monte-Carlo (hard φ
/// past the budget) — deterministic to the bit thanks to the fixed
/// seed and absent deadline.
fn circuit_config() -> EngineConfig {
    EngineConfig {
        max_brute_force_tuples: 4,
        sampling: Some(SamplingConfig {
            eps: 0.2,
            delta: 0.05,
            deadline: None,
            seed: common::BASE_SEED,
        }),
        ..EngineConfig::default()
    }
}

/// The extensional-leaning config: safe monotone functions go through
/// lifted inference (exercising the lattice memo + its read-path
/// probes) instead of the d-D pipeline.
fn extensional_config() -> EngineConfig {
    EngineConfig {
        prefer_extensional: true,
        ..circuit_config()
    }
}

/// The headline differential: all 272 `k ≤ 2` functions, exact and
/// f64, pushed through [`CLIENTS`] concurrent clients of one server —
/// answers bit-identical to a sequential engine fed the same multiset,
/// merged stats equal on every count field, under both route-coverage
/// configs.
#[test]
fn concurrent_clients_match_sequential_engine_for_all_k2_functions() {
    for (config_name, config) in [
        ("circuit", circuit_config()),
        ("extensional", extensional_config()),
    ] {
        let mut coverage = EngineStats::default();
        for k in 1u8..=2 {
            let mut state = common::BASE_SEED ^ (u64::from(k) << 32);
            // k = 1 stays under the 4-tuple brute-force budget (hard φ
            // brute-forced); k = 2 sits above it (hard φ sampled).
            let n = if k == 1 { 3 } else { TUPLE_CAP };
            let tid = sized_tid(&mut state, k, 2, n);
            let fns = all_functions(k);

            // Sequential oracle: same config, same requests, one thread.
            let mut seq = PqeEngine::with_config(config);
            let expected: Vec<(BigRational, u64)> = fns
                .iter()
                .map(|phi| {
                    let q = HQuery::new(phi.clone());
                    let exact = seq.evaluate(&q, &tid).unwrap();
                    let bits = seq.evaluate_f64(&q, &tid).unwrap().to_bits();
                    (exact, bits)
                })
                .collect();
            let seq_stats = seq.stats().clone();

            // Concurrent server: CLIENTS threads split the functions
            // round-robin, each asking exact + f64.
            let server = Server::start(ServeConfig {
                engine: config,
                workers: CLIENTS,
                queue_capacity: 64,
                ..ServeConfig::default()
            })
            .unwrap();
            let handle = server.handle();
            thread::scope(|scope| {
                for client in 0..CLIENTS {
                    let handle = handle.clone();
                    let (fns, expected, tid) = (&fns, &expected, &tid);
                    scope.spawn(move || {
                        for (i, phi) in fns.iter().enumerate().skip(client).step_by(CLIENTS) {
                            let q = HQuery::new(phi.clone());
                            let exact = handle.evaluate(&q, tid).unwrap();
                            assert_eq!(
                                exact,
                                expected[i].0,
                                "{config_name} k={k} φ table {:#x}: exact answer diverged",
                                phi.table_u64()
                            );
                            let bits = handle.evaluate_f64(&q, tid).unwrap().to_bits();
                            assert_eq!(
                                bits,
                                expected[i].1,
                                "{config_name} k={k} φ table {:#x}: f64 bits diverged",
                                phi.table_u64()
                            );
                        }
                    });
                }
            });
            let stats = server.shutdown();
            assert_counts_equal(&stats, &seq_stats, &format!("{config_name} k={k}"));
            assert_eq!(stats.queries, 2 * fns.len() as u64);
            coverage.merge(&stats);
        }
        // No `k ≤ 2` function is both monotone and zero-Euler (the
        // smallest, φ9, needs k = 3), so `prefer_extensional` gets a
        // dedicated φ9 pass: repeated concurrent evaluations prove the
        // lattice memo's read-path probe accounting (1 build, N − 1
        // memo hits) matches a sequential engine.
        if config_name == "extensional" {
            let mut state = common::BASE_SEED ^ 0xE87;
            let tid = sized_tid(&mut state, 3, 2, TUPLE_CAP);
            let q = HQuery::new(intext_boolfn::phi9());
            const REPS: usize = 8;

            let mut seq = PqeEngine::with_config(config);
            let exact = seq.evaluate(&q, &tid).unwrap();
            let bits = seq.evaluate_f64(&q, &tid).unwrap().to_bits();
            for _ in 1..CLIENTS * REPS {
                assert_eq!(seq.evaluate(&q, &tid).unwrap(), exact);
                assert_eq!(seq.evaluate_f64(&q, &tid).unwrap().to_bits(), bits);
            }
            let seq_stats = seq.stats().clone();

            let server = Server::start(ServeConfig {
                engine: config,
                workers: CLIENTS,
                ..ServeConfig::default()
            })
            .unwrap();
            let handle = server.handle();
            thread::scope(|scope| {
                for _ in 0..CLIENTS {
                    let handle = handle.clone();
                    let (q, tid, exact) = (&q, &tid, &exact);
                    scope.spawn(move || {
                        for _ in 0..REPS {
                            assert_eq!(&handle.evaluate(q, tid).unwrap(), exact);
                            assert_eq!(handle.evaluate_f64(q, tid).unwrap().to_bits(), bits);
                        }
                    });
                }
            });
            let stats = server.shutdown();
            assert_counts_equal(&stats, &seq_stats, "extensional φ9");
            coverage.merge(&stats);
        }

        // The sweep must actually have exercised the mixed routes.
        assert!(coverage.obdd_plans > 0, "{config_name}: no OBDD route");
        assert!(
            coverage.brute_force_plans > 0,
            "{config_name}: no brute-force route"
        );
        assert!(coverage.sample_plans > 0, "{config_name}: no sampled route");
        assert!(
            coverage.dd_plans > 0,
            "{config_name}: never took the d-D route"
        );
        if config_name == "extensional" {
            assert!(
                coverage.extensional_plans > 0,
                "extensional config never took lifted inference"
            );
            assert!(
                coverage.extensional_memo_hits > 0,
                "repeated φ9 evaluations never hit the lattice memo"
            );
        }
    }
}

/// Batches: a mixed-shape scenario workload served concurrently (one
/// client exact, one sharded f64) is bit-identical to the engine's own
/// batch paths — including the lane-kernel call count, because the
/// server replicates the engine's shard chunk math.
#[test]
fn concurrent_batches_match_the_engines_batch_paths() {
    let config = circuit_config();
    let mut state = common::BASE_SEED ^ 0xBA7C;
    // Two shapes: 6 scenarios re-weighting shape A, then 3 of shape B —
    // exercising run sharing and the fresh-shape boundary.
    let shape_a = sized_tid(&mut state, 2, 2, 5);
    let shape_b = sized_tid(&mut state, 2, 2, 3);
    let mut scenarios: Vec<Tid> = Vec::new();
    for _ in 0..6 {
        let probs: Vec<BigRational> = (0..shape_a.len()).map(|_| rational(&mut state)).collect();
        scenarios.push(Tid::new(shape_a.database().clone(), probs).unwrap());
    }
    for _ in 0..3 {
        let probs: Vec<BigRational> = (0..shape_b.len()).map(|_| rational(&mut state)).collect();
        scenarios.push(Tid::new(shape_b.database().clone(), probs).unwrap());
    }
    let phi = BoolFn::from_table_u64(3, 0x96); // a zero-Euler d-D function
    let q = HQuery::new(phi);
    const SHARDS: usize = 3;

    let mut seq = PqeEngine::with_config(config);
    let expected_exact = seq.evaluate_batch(&q, &scenarios).unwrap();
    let expected_f64 = seq
        .evaluate_batch_sharded_f64(&q, &scenarios, SHARDS)
        .unwrap();
    let seq_stats = seq.stats().clone();

    let server = Server::start(ServeConfig {
        engine: config,
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let handle = server.handle();
    thread::scope(|scope| {
        let exact_client = {
            let handle = handle.clone();
            let (q, scenarios) = (&q, &scenarios);
            scope.spawn(move || handle.evaluate_batch(q, scenarios).unwrap())
        };
        let f64_client = {
            let handle = handle.clone();
            let (q, scenarios) = (&q, &scenarios);
            scope.spawn(move || handle.evaluate_batch_f64(q, scenarios, SHARDS).unwrap())
        };
        assert_eq!(exact_client.join().unwrap(), expected_exact);
        let served_f64 = f64_client.join().unwrap();
        assert_eq!(served_f64.len(), expected_f64.len());
        for (i, (a, b)) in served_f64.iter().zip(&expected_f64).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "scenario {i}: sharded f64 bits diverged"
            );
        }
    });
    // Empty batches resolve too (to empty answers, zero queries).
    assert_eq!(
        handle.evaluate_batch(&q, &[]).unwrap(),
        Vec::<BigRational>::new()
    );
    let stats = server.shutdown();
    assert_counts_equal(&stats, &seq_stats, "batch workload");
    assert!(
        stats.lane_kernel_calls > 0,
        "sharded f64 skipped the lane kernel"
    );
}

/// Estimates are sample-for-sample reproducible across the server, and
/// a snapshot taken mid-traffic warm-starts a replica that answers
/// bit-identically with zero compiles.
#[test]
fn estimates_and_snapshots_serve_replicas() {
    let config = circuit_config();
    let mut state = common::BASE_SEED ^ 0xE57;
    let tid = sized_tid(&mut state, 2, 2, TUPLE_CAP);
    let fns = all_functions(2);

    let mut seq = PqeEngine::with_config(config);
    let server = Server::start(ServeConfig {
        engine: config,
        workers: CLIENTS,
        ..ServeConfig::default()
    })
    .unwrap();
    let handle = server.handle();

    // Concurrent estimate sweep vs the sequential engine: exact routes
    // come back with eps = 0, sampled routes with the seeded stream's
    // exact draw count and value bits.
    let expected: Vec<_> = fns
        .iter()
        .map(|phi| seq.estimate(HQuery::new(phi.clone()), &tid).unwrap())
        .collect();
    thread::scope(|scope| {
        for client in 0..CLIENTS {
            let handle = handle.clone();
            let (fns, expected, tid) = (&fns, &expected, &tid);
            scope.spawn(move || {
                for (i, phi) in fns.iter().enumerate().skip(client).step_by(CLIENTS) {
                    let e = handle.estimate(HQuery::new(phi.clone()), tid).unwrap();
                    let want = &expected[i];
                    assert_eq!(
                        e.value.to_bits(),
                        want.value.to_bits(),
                        "φ table {:#x}: estimate value diverged",
                        phi.table_u64()
                    );
                    assert_eq!(e.eps.to_bits(), want.eps.to_bits());
                    assert_eq!(e.samples, want.samples);
                    assert_eq!(e.sampler, want.sampler);
                    assert!(!e.deadline_hit, "no deadline is configured");
                }
            });
        }
    });

    // Snapshot → replica warm start: every cacheable answer replays
    // from the snapshot without a single compile.
    let snapshot = handle.snapshot().unwrap();
    let mut replica = PqeEngine::with_config(config);
    let report = replica.load_cache(&snapshot).unwrap();
    assert!(report.artifacts > 0, "traffic left nothing cacheable?");
    for phi in &fns {
        let q = HQuery::new(phi.clone());
        assert_eq!(
            replica.evaluate(&q, &tid).unwrap(),
            seq.evaluate(&q, &tid).unwrap(),
            "replica diverged on φ table {:#x}",
            phi.table_u64()
        );
    }
    assert_eq!(
        replica.stats().cache_misses,
        0,
        "warm-started replica recompiled something"
    );
    server.shutdown();
}

/// Finds a function the engine will brute-force on `tid` under
/// `config` — the deterministic way to wedge a worker for a while.
fn brute_force_function(config: EngineConfig, tid: &Tid) -> HQuery {
    let engine = PqeEngine::with_config(config);
    all_functions(tid.database().k())
        .into_iter()
        .map(HQuery::new)
        .find(|q| engine.plan(q, tid) == Ok(Plan::BruteForce))
        .expect("some k=2 function is hard on this instance")
}

/// Deterministic saturation: one worker, a wedging brute-force query,
/// a full queue. Every submission is accounted for — admitted requests
/// all resolve (answer, deadline rejection, or client cancel), excess
/// ones are `QueueFull` at the door — and the queue never exceeds its
/// bound.
#[test]
fn saturation_sheds_load_only_via_typed_backpressure() {
    // Default engine config: no sampling, 20-tuple brute-force budget,
    // so a hard φ on an 18-tuple instance enumerates 2^18 worlds.
    let mut state = common::BASE_SEED ^ 0x5A7;
    let big = sized_tid(&mut state, 2, 3, 18);
    let hard = brute_force_function(EngineConfig::default(), &big);
    const CAPACITY: usize = 4;

    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: CAPACITY,
        ..ServeConfig::default()
    })
    .unwrap();
    let handle = server.handle();

    // Wedge the single worker, then wait for it to take the job.
    let slow = handle
        .submit(Request::Evaluate {
            q: hard.clone().into(),
            tid: big.clone(),
        })
        .unwrap();
    let started = Instant::now();
    while handle.queue_depth() > 0 {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "worker never picked up the wedge job"
        );
        thread::yield_now();
    }

    // Fill the queue: one doomed-by-deadline entry, one cancel target,
    // and normal pings for the rest of the capacity.
    let doomed = handle
        .clone()
        .with_deadline(Duration::from_nanos(1))
        .submit(Request::Ping)
        .unwrap();
    let cancel_me = handle.submit(Request::Ping).unwrap();
    let pings: Vec<_> = (0..CAPACITY - 2)
        .map(|_| handle.submit(Request::Ping).unwrap())
        .collect();
    assert_eq!(handle.queue_depth(), CAPACITY);

    // The bound is a hard wall: every further submission is QueueFull.
    for _ in 0..3 {
        let err = handle.submit(Request::Ping).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: CAPACITY });
        assert!(err.is_backpressure());
    }

    // Cancellation takes the entry back exactly once.
    assert!(cancel_me.cancel(), "entry was still queued");
    assert!(!cancel_me.cancel(), "second cancel must lose");
    assert_eq!(cancel_me.wait().unwrap_err(), ServeError::Cancelled);

    // The wedge job itself resolves with the *right answer* — overload
    // never corrupts an admitted computation.
    match slow.wait().unwrap() {
        Response::Exact(p) => {
            assert_eq!(p, PqeEngine::new().evaluate(&hard, &big).unwrap())
        }
        other => panic!("expected an exact answer, got {other:?}"),
    }

    // The deadline entry was popped after its deadline: typed rejection.
    match doomed.wait().unwrap_err() {
        ServeError::DeadlineExceeded { late_by } => assert!(late_by > Duration::ZERO),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }

    // Everything else resolves normally; shutdown joins cleanly.
    for ping in pings {
        assert!(matches!(ping.wait().unwrap(), Response::Pong));
    }
    assert!(handle.queue_high_water() <= CAPACITY);
    server.shutdown();
}

/// Randomized saturation: racing clients fire non-blocking bursts at a
/// tiny queue. Every submission resolves to exactly one of a correct
/// answer or typed backpressure; nothing deadlocks, nothing is lost.
#[test]
fn racing_bursts_never_lose_or_corrupt_a_request() {
    let mut state = common::BASE_SEED ^ 0xBB;
    let tid = sized_tid(&mut state, 1, 2, 3);
    let fns = all_functions(1);
    let expected: Vec<u64> = {
        let mut seq = PqeEngine::new();
        fns.iter()
            .map(|phi| {
                seq.evaluate_f64(HQuery::new(phi.clone()), &tid)
                    .unwrap()
                    .to_bits()
            })
            .collect()
    };

    let server = Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let handle = server.handle();
    let answered = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    thread::scope(|scope| {
        for client in 0..6 {
            let handle = handle.clone();
            let (fns, expected) = (&fns, &expected);
            let (answered, rejected, tid) = (&answered, &rejected, &tid);
            scope.spawn(move || {
                let mut state = common::BASE_SEED ^ (client as u64) << 17;
                for round in 0..20 {
                    // A burst of up to 4 non-blocking submissions …
                    let burst: Vec<(usize, _)> = (0..1 + mix(&mut state) % 4)
                        .map(|_| {
                            let i = (mix(&mut state) as usize) % fns.len();
                            let req = Request::EvaluateF64 {
                                q: HQuery::new(fns[i].clone()).into(),
                                tid: tid.clone(),
                            };
                            (i, handle.submit(req))
                        })
                        .collect();
                    // … then every outcome is accounted for.
                    for (i, submitted) in burst {
                        match submitted {
                            Ok(pending) => match pending.wait() {
                                Ok(Response::F64(p)) => {
                                    assert_eq!(
                                        p.to_bits(),
                                        expected[i],
                                        "client {client} round {round}: wrong bits under load"
                                    );
                                    answered.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(other) => panic!("wrong response shape: {other:?}"),
                                Err(e) => panic!("admitted request failed: {e}"),
                            },
                            Err(e) => {
                                assert!(
                                    e.is_backpressure(),
                                    "client {client} round {round}: non-backpressure rejection {e}"
                                );
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let stats = server.shutdown();
    let answered = answered.load(Ordering::Relaxed);
    assert_eq!(
        stats.queries, answered,
        "every admitted request was evaluated"
    );
    assert!(answered > 0, "the hammer never landed a request");
    assert!(handle.queue_high_water() <= 4);
}

/// Satellite (b): live tuple updates race evaluations through the
/// shared rw-lock. The gate budget holds at every observation point,
/// every concurrent answer is correct for the instance it was asked
/// about, and the patched engine ends indistinguishable from a fresh
/// compile — the PR 7 oracle discipline, now under concurrency.
#[test]
fn concurrent_updates_keep_the_cache_bounded_and_patched_equals_fresh() {
    const BUDGET: usize = 512;
    const STEPS: usize = 12;
    let server = Server::start(ServeConfig {
        engine: EngineConfig {
            cache_gate_budget: Some(BUDGET),
            ..EngineConfig::default()
        },
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let handle = server.handle();

    // One updater per vocabulary, each owning its TID; a reader
    // hammering a fixed instance through the server concurrently.
    let final_tids: Mutex<Vec<Tid>> = Mutex::new(Vec::new());
    let mut reader_state = common::BASE_SEED ^ 0x0F;
    let reader_tid = sized_tid(&mut reader_state, 1, 2, 3);
    let reader_fns = all_functions(1);
    let reader_expected: Vec<BigRational> = {
        let mut seq = PqeEngine::new();
        reader_fns
            .iter()
            .map(|phi| seq.evaluate(HQuery::new(phi.clone()), &reader_tid).unwrap())
            .collect()
    };
    thread::scope(|scope| {
        for k in 1u8..=2 {
            let handle = handle.clone();
            let final_tids = &final_tids;
            scope.spawn(move || {
                let mut state = common::BASE_SEED ^ (u64::from(k) << 7);
                let all = universe(k, 2);
                let mut tid = sized_tid(&mut state, k, 2, 4);
                let phi = BoolFn::from_table_u64(k + 1, if k == 1 { 0x6 } else { 0x96 });
                let q = HQuery::new(phi);
                let engine = handle.engine();
                for _ in 0..STEPS {
                    // Touch the artifact so updates patch live state.
                    let before = handle.evaluate(&q, &tid).unwrap();
                    assert_eq!(
                        before,
                        intext_query::pqe_brute_force(&q, &tid).unwrap(),
                        "k={k}: served answer wrong for the current instance"
                    );
                    // One random structural/weight update via the
                    // write-locked path.
                    let present: Vec<_> = tid.database().iter().map(|(id, _)| id).collect();
                    let absent: Vec<_> = all
                        .iter()
                        .copied()
                        .filter(|t| !tid.database().iter().any(|(_, have)| have == *t))
                        .collect();
                    match mix(&mut state) % 3 {
                        0 if !absent.is_empty() && tid.len() < TUPLE_CAP => {
                            let t = absent[(mix(&mut state) as usize) % absent.len()];
                            engine
                                .insert_tuple(&mut tid, t, rational(&mut state))
                                .unwrap();
                        }
                        1 if tid.len() > 1 => {
                            let id = present[(mix(&mut state) as usize) % present.len()];
                            engine.remove_tuple(&mut tid, id).unwrap();
                        }
                        _ => {
                            let id = present[(mix(&mut state) as usize) % present.len()];
                            engine
                                .set_probability(&mut tid, id, rational(&mut state))
                                .unwrap();
                        }
                    }
                    // The budget holds at every observation point, even
                    // mid-update-storm.
                    let gates = engine.cache_gates();
                    assert!(
                        gates <= BUDGET,
                        "k={k}: cache_gates {gates} exceeded the {BUDGET} budget"
                    );
                }
                final_tids.lock().unwrap().push(tid);
            });
        }
        // The reader: correct answers for its own (never-updated)
        // instance throughout the storm.
        let reader = handle.clone();
        let (reader_fns, reader_expected, reader_tid) =
            (&reader_fns, &reader_expected, &reader_tid);
        scope.spawn(move || {
            for _ in 0..3 {
                for (phi, want) in reader_fns.iter().zip(reader_expected) {
                    let p = reader
                        .evaluate(HQuery::new(phi.clone()), reader_tid)
                        .unwrap();
                    assert_eq!(&p, want, "reader answer corrupted by concurrent updates");
                }
            }
        });
    });

    // Patched ≡ fresh, after the storm: the full 272-function sweep on
    // each updater's final instance.
    for tid in final_tids.into_inner().unwrap() {
        let k = tid.database().k();
        let mut fresh = PqeEngine::new();
        for phi in all_functions(k) {
            let q = HQuery::new(phi.clone());
            assert_eq!(
                handle.evaluate(&q, &tid).unwrap(),
                fresh.evaluate(&q, &tid).unwrap(),
                "k={k}: patched ≠ fresh on φ table {:#x}",
                phi.table_u64()
            );
        }
    }
    assert!(handle.engine().cache_gates() <= BUDGET);
    server.shutdown();
}

/// The socket transports: answers cross TCP and Unix sockets
/// losslessly (exact rationals `==` a local engine's), engine errors
/// arrive typed, and a malformed frame closes the connection without
/// hurting the server.
#[test]
fn tcp_and_unix_transports_round_trip_bit_identically() {
    let mut state = common::BASE_SEED ^ 0x7C9;
    let tid = sized_tid(&mut state, 2, 2, 5);
    let q = HQuery::new(BoolFn::from_table_u64(3, 0x96));
    let mut seq = PqeEngine::new();
    let expected = seq.evaluate(&q, &tid).unwrap();
    let expected_bits = seq.evaluate_f64(&q, &tid).unwrap().to_bits();

    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let listener = listen_tcp(server.handle(), "127.0.0.1:0").unwrap();
    let addr = listener.tcp_addr().unwrap();

    let mut client = RemoteClient::connect(addr).unwrap();
    match client
        .request(&Request::Evaluate {
            q: q.clone().into(),
            tid: tid.clone(),
        })
        .unwrap()
        .unwrap()
    {
        Response::Exact(p) => assert_eq!(p, expected, "exact answer lost precision over TCP"),
        other => panic!("expected exact, got {other:?}"),
    }
    match client
        .request(&Request::EvaluateF64 {
            q: q.clone().into(),
            tid: tid.clone(),
        })
        .unwrap()
        .unwrap()
    {
        Response::F64(p) => assert_eq!(p.to_bits(), expected_bits),
        other => panic!("expected f64, got {other:?}"),
    }
    // Typed engine errors travel the wire too: a k=1 query against the
    // k=2 database is a vocabulary mismatch, not a dead connection.
    let mismatch = client
        .request(&Request::Evaluate {
            q: HQuery::new(BoolFn::from_table_u64(2, 0x6)).into(),
            tid: tid.clone(),
        })
        .unwrap()
        .unwrap_err();
    assert!(matches!(
        mismatch,
        ServeError::Engine(intext_engine::EngineError::VocabularyMismatch {
            query_k: 1,
            database_k: 2,
        })
    ));
    assert!(matches!(
        client.request(&Request::Ping).unwrap().unwrap(),
        Response::Pong
    ));

    // A second client races the first over the same listener.
    let mut second = RemoteClient::connect(addr).unwrap();
    match second
        .request(&Request::Batch {
            q: q.clone().into(),
            tids: vec![tid.clone(), tid.clone()],
        })
        .unwrap()
        .unwrap()
    {
        Response::Batch(ps) => assert_eq!(ps, vec![expected.clone(), expected.clone()]),
        other => panic!("expected a batch, got {other:?}"),
    }

    // Unix-domain socket, same contract.
    #[cfg(unix)]
    {
        let path = std::env::temp_dir().join(format!("intext-serve-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let unix_listener = intext_serve::listen_unix(server.handle(), &path).unwrap();
        let mut unix_client = RemoteClient::connect_unix(&path).unwrap();
        match unix_client
            .request(&Request::Evaluate {
                q: q.clone().into(),
                tid: tid.clone(),
            })
            .unwrap()
            .unwrap()
        {
            Response::Exact(p) => assert_eq!(p, expected),
            other => panic!("expected exact, got {other:?}"),
        }
        drop(unix_client);
        unix_listener.stop();
        assert!(!path.exists(), "socket file survived listener shutdown");
    }

    // A garbage frame closes that connection; the server (and other
    // connections) keep answering.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(&7u32.to_le_bytes()).unwrap();
        raw.write_all(&[0x99; 7]).unwrap(); // unknown opcode
        raw.flush().unwrap();
    }
    assert!(matches!(
        client.request(&Request::Ping).unwrap().unwrap(),
        Response::Pong
    ));

    listener.stop();
    server.shutdown();
}

/// Fault injection (PR 10): a worker panic costs exactly one request —
/// typed [`ServeError::WorkerPanicked`], never a hang or a wrong
/// answer — and a panic that poisons the engine lock is recovered
/// *and counted* (`EngineStats::lock_poisonings_recovered`), not
/// silently swallowed. Every request after either fault still answers
/// bit-identically to a sequential engine.
#[test]
fn injected_panics_cost_one_request_and_poisonings_are_counted() {
    let mut state = common::BASE_SEED ^ 0xFA17;
    let tid = sized_tid(&mut state, 2, 2, 5);
    let q = HQuery::new(BoolFn::from_table_u64(3, 0x96));
    let expected = PqeEngine::new().evaluate(&q, &tid).unwrap();

    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let handle = server.handle();

    // Three armed panics, three requests: each resolves as
    // WorkerPanicked (the worker loop survives every one of them).
    handle.inject_worker_panics(3);
    for round in 0..3 {
        let err = handle.evaluate(&q, &tid).unwrap_err();
        assert_eq!(err, ServeError::WorkerPanicked, "round {round}");
    }

    // The pool is intact: the very next request succeeds, bit-identical
    // to the sequential reference.
    assert_eq!(handle.evaluate(&q, &tid).unwrap(), expected);
    assert_eq!(handle.stats().lock_poisonings_recovered, 0);

    // Now poison the engine lock itself: panic while holding the write
    // guard (the injected panics above run outside the lock and cannot
    // poison it — this is the other failure mode).
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle
            .engine()
            .with_engine_mut(|_| panic!("injected panic under the engine write lock"));
    }));
    assert!(unwound.is_err());

    // Every path still works over the poisoned-and-recovered lock, and
    // the recovery is observable in the merged stats.
    assert_eq!(handle.evaluate(&q, &tid).unwrap(), expected);
    assert!(
        handle.stats().lock_poisonings_recovered >= 1,
        "poison recovery happened but was not counted"
    );
    let final_stats = server.shutdown();
    assert!(final_stats.lock_poisonings_recovered >= 1);
}
