//! E9 (Theorem 5.2 / Corollary 5.3): the three evaluation strategies —
//! brute-force possible worlds, extensional lifted inference, and the
//! paper's intensional d-D pipeline — agree **exactly** on every safe
//! query, across random databases.

use intext::boolfn::{enumerate, phi9, small, BoolFn};
use intext::circuits::verify;
use intext::core::{classify, compile_dd, CompileError};
use intext::extensional::{pqe_extensional, ExtensionalError};
use intext::query::{pqe_brute_force, HQuery};
use intext::tid::{random_database, random_tid, DbGenConfig, Tid};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_tid(k: u8, domain: u32, seed: u64) -> Tid {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_database(
        &DbGenConfig {
            k,
            domain_size: domain,
            density: 0.7,
            prob_denominator: 8,
        },
        &mut rng,
    );
    random_tid(db, 8, &mut rng)
}

#[test]
fn all_safe_monotone_k3_queries_agree_across_engines() {
    // Every safe monotone function on V = {0..3} (the phi9 arena):
    // extensional == intensional == brute force, with exact rationals.
    let tid = sample_tid(3, 2, 42);
    let mut safe = 0u32;
    let mut unsafe_count = 0u32;
    for t in enumerate::monotone_tables(4) {
        let phi = BoolFn::from_table_u64(4, t);
        let q = HQuery::new(phi.clone());
        match pqe_extensional(&q, &tid) {
            Ok(ext) => {
                let dd = compile_dd(&phi, tid.database()).expect("safe implies e=0");
                let int = dd.probability_exact(&tid);
                assert_eq!(ext, int, "extensional vs intensional, t={t:#x}");
                let brute = pqe_brute_force(&q, &tid).unwrap();
                assert_eq!(int, brute, "intensional vs brute force, t={t:#x}");
                safe += 1;
            }
            Err(ExtensionalError::NotSafe) => {
                // The d-D pipeline must refuse these too (Cor 3.9).
                assert!(matches!(
                    compile_dd(&phi, tid.database()),
                    Err(CompileError::NonZeroEuler(_))
                ));
                unsafe_count += 1;
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert!(safe > 20, "checked {safe} safe queries");
    assert!(unsafe_count > 20, "checked {unsafe_count} unsafe queries");
}

#[test]
fn non_ucq_zero_euler_queries_beat_the_extensional_engine() {
    // The paper's headline: H-queries outside H+ (non-monotone) with
    // e = 0 are handled intensionally even though the extensional
    // dichotomy does not even apply to them.
    let tid = sample_tid(3, 2, 7);
    let mut rng = StdRng::seed_from_u64(1234);
    let mut checked = 0;
    while checked < 8 {
        let t = {
            use rand::Rng;
            rng.random::<u64>() & small::full_mask(4)
        };
        if small::euler(4, t) != 0 || small::is_monotone(4, t) {
            continue;
        }
        let phi = BoolFn::from_table_u64(4, t);
        let q = HQuery::new(phi.clone());
        assert_eq!(
            pqe_extensional(&q, &tid).unwrap_err(),
            ExtensionalError::NotMonotone
        );
        let dd = compile_dd(&phi, tid.database()).expect("e = 0 compiles");
        let brute = pqe_brute_force(&q, &tid).unwrap();
        assert_eq!(dd.probability_exact(&tid), brute, "t={t:#x}");
        checked += 1;
    }
}

#[test]
fn compiled_circuits_are_verified_dds_on_small_instances() {
    // Structural decomposability + semantic determinism, checked
    // exhaustively (few variables on a 1-element domain).
    let tid = sample_tid(3, 1, 99);
    for t in [phi9().table_u64(), 0x9669_u64, 0x6996_u64] {
        if small::euler(4, t) != 0 {
            continue;
        }
        let phi = BoolFn::from_table_u64(4, t);
        let dd = compile_dd(&phi, tid.database()).unwrap();
        verify::check_dd(&dd.circuit, dd.root)
            .unwrap_or_else(|v| panic!("d-D violation for t={t:#x}: {v}"));
    }
}

#[test]
fn classification_matches_engine_behaviour() {
    let tid = sample_tid(2, 2, 3);
    for t in 0..256u64 {
        let phi = BoolFn::from_table_u64(3, t);
        let region = classify(&phi);
        let compiles = compile_dd(&phi, tid.database()).is_ok();
        assert_eq!(
            compiles,
            region.is_tractable(),
            "region {region:?} vs pipeline for t={t:#x}"
        );
        if phi.is_monotone() {
            let q = HQuery::new(phi.clone());
            let ext_ok = pqe_extensional(&q, &tid).is_ok();
            assert_eq!(ext_ok, region.is_tractable(), "extensional for t={t:#x}");
        }
    }
    // Census sanity at k=2: 70 zero-Euler functions, of which the
    // degenerate ones form the OBDD region.
    let zero_euler = (0..256u64).filter(|&t| small::euler(3, t) == 0).count();
    assert_eq!(zero_euler, 70);
    let tractable = (0..256u64)
        .filter(|&t| classify(&BoolFn::from_table_u64(3, t)).is_tractable())
        .count();
    assert_eq!(tractable, zero_euler, "tractable == zero Euler at k=2");
}

#[test]
fn growing_domains_stay_consistent() {
    // phi9 across increasing domain sizes: intensional == extensional
    // (brute force is out of reach beyond tiny databases — that is the
    // point of the paper).
    for (domain, seed) in [(2u32, 11u64), (3, 12), (4, 13)] {
        let tid = sample_tid(3, domain, seed);
        let q = HQuery::new(phi9());
        let ext = pqe_extensional(&q, &tid).unwrap();
        let dd = compile_dd(&phi9(), tid.database()).unwrap();
        assert_eq!(ext, dd.probability_exact(&tid), "domain {domain}");
    }
}
