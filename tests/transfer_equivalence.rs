//! E10/E11 (Theorem 6.2 and Proposition 6.1): the ≃-transformation
//! connects exactly the functions of equal Euler characteristic, and the
//! induced reductions preserve probabilities and lineage circuits.

use intext::boolfn::{small, BoolFn};
use intext::circuits::Circuit;
use intext::core::{
    apply_steps, compile_dd, pqe_via_transfer, steps_between, transfer_circuit, Step,
};
use intext::query::{pqe_brute_force, HQuery};
use intext::tid::{random_database, random_tid, DbGenConfig, Tid, TupleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_tid(k: u8, seed: u64) -> Tid {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_database(
        &DbGenConfig {
            k,
            domain_size: 2,
            density: 0.7,
            prob_denominator: 6,
        },
        &mut rng,
    );
    random_tid(db, 6, &mut rng)
}

fn random_table(rng: &mut StdRng, n: u8) -> u64 {
    rng.random::<u64>() & small::full_mask(n)
}

#[test]
fn random_equal_euler_pairs_are_step_connected_k3() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut connected = 0;
    while connected < 25 {
        let t1 = random_table(&mut rng, 4);
        let t2 = random_table(&mut rng, 4);
        if small::euler(4, t1) != small::euler(4, t2) {
            continue;
        }
        let f = BoolFn::from_table_u64(4, t1);
        let g = BoolFn::from_table_u64(4, t2);
        let steps = steps_between(&f, &g).expect("equal Euler implies ≃");
        assert_eq!(apply_steps(&f, &steps).unwrap(), g, "{t1:#x} -> {t2:#x}");
        connected += 1;
    }
}

#[test]
fn step_sequences_preserve_euler_throughout() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..10 {
        let t1 = random_table(&mut rng, 4);
        let t2 = random_table(&mut rng, 4);
        if small::euler(4, t1) != small::euler(4, t2) {
            continue;
        }
        let f = BoolFn::from_table_u64(4, t1);
        let g = BoolFn::from_table_u64(4, t2);
        let steps = steps_between(&f, &g).unwrap();
        let e = f.euler_characteristic();
        let mut cur = f;
        for s in &steps {
            cur = s.apply(&cur).unwrap();
            assert_eq!(cur.euler_characteristic(), e, "invariant broken at {s:?}");
        }
        assert_eq!(cur, g);
    }
}

#[test]
fn pqe_reduction_reconstructs_probabilities_exactly() {
    // Theorem 6.2 (a) with brute force as the oracle, on hard queries
    // (e = ±1, ±2) where no direct polynomial algorithm exists.
    let tid = sample_tid(2, 5);
    let mut rng = StdRng::seed_from_u64(77);
    let mut done = 0;
    while done < 10 {
        let t1 = random_table(&mut rng, 3);
        let t2 = random_table(&mut rng, 3);
        let e = small::euler(3, t1);
        if e != small::euler(3, t2) || e == 0 {
            continue;
        }
        let f = BoolFn::from_table_u64(3, t1);
        let g = BoolFn::from_table_u64(3, t2);
        let steps = steps_between(&f, &g).unwrap();
        let source = pqe_brute_force(&HQuery::new(f.clone()), &tid).unwrap();
        let transferred = pqe_via_transfer(&source, 3, &steps, &tid).unwrap();
        let direct = pqe_brute_force(&HQuery::new(g), &tid).unwrap();
        assert_eq!(transferred, direct, "e={e}, {t1:#x} -> {t2:#x}");
        done += 1;
    }
}

#[test]
fn circuit_transfer_equals_direct_compilation() {
    // Theorem 6.2 (b): extending a compiled d-D along steps yields the
    // same function as compiling the target from scratch.
    let tid = sample_tid(3, 21);
    let db = tid.database();
    let mut rng = StdRng::seed_from_u64(9);
    let mut done = 0;
    while done < 5 {
        let t = random_table(&mut rng, 4);
        if small::euler(4, t) != 0 {
            continue;
        }
        let phi = BoolFn::from_table_u64(4, t);
        // Compile phi9-class source: ⊥ is the simplest e=0 source.
        let steps: Vec<Step> = steps_between(&BoolFn::bottom(4), &phi).unwrap();
        let mut circuit = Circuit::new();
        let bot = circuit.constant(false);
        let root = transfer_circuit(&mut circuit, bot, 4, &steps, db).unwrap();
        let via_transfer = circuit.probability_exact(root, &|v| tid.prob(TupleId(v)).clone());
        let direct = compile_dd(&phi, db).unwrap().probability_exact(&tid);
        assert_eq!(via_transfer, direct, "t={t:#x}");
        done += 1;
    }
}

#[test]
fn transfer_composes_transitively() {
    // f → g → h equals f → h semantically.
    let f = BoolFn::from_sat(3, [0b000u32, 0b001]);
    let g = BoolFn::from_sat(3, [0b010u32, 0b110]);
    let h = BoolFn::from_sat(3, [0b111u32, 0b011, 0b101, 0b100]);
    assert_eq!(f.euler_characteristic(), 0);
    assert_eq!(g.euler_characteristic(), 0);
    assert_eq!(h.euler_characteristic(), 0);
    let fg = steps_between(&f, &g).unwrap();
    let gh = steps_between(&g, &h).unwrap();
    let mut composed = fg;
    composed.extend(gh);
    assert_eq!(apply_steps(&f, &composed).unwrap(), h);
}
