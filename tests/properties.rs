//! Cross-crate property-based tests: random functions, random databases,
//! exact agreement between all engines and validity of every produced
//! artifact.

use intext::boolfn::{small, BoolFn};
use intext::core::{apply_steps, compile_dd, steps_between, steps_to_bottom, Fragmentation};
use intext::extensional::pqe_extensional;
use intext::query::{pqe_brute_force, HQuery};
use intext::tid::{random_database, random_tid, DbGenConfig, Tid};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a Boolean function on `n` variables with e(φ) = 0, built by
/// pairing equal numbers of even and odd satisfying valuations.
fn zero_euler_fn(n: u8) -> impl Strategy<Value = BoolFn> {
    (any::<u64>(), any::<u64>()).prop_map(move |(a, b)| {
        let evens = a & small::EVEN_PARITY_MASK & small::full_mask(n);
        let odds = b & !small::EVEN_PARITY_MASK & small::full_mask(n);
        // Balance the counts by dropping surplus bits.
        let (ne, no) = (evens.count_ones(), odds.count_ones());
        let keep = ne.min(no);
        let trim = |mut bits: u64, count: u32| {
            let mut dropped = 0;
            while dropped < count {
                let low = bits & bits.wrapping_neg();
                bits ^= low;
                dropped += 1;
            }
            bits
        };
        let table = trim(evens, ne - keep) | trim(odds, no - keep);
        BoolFn::from_table_u64(n, table)
    })
}

fn tid_from_seed(k: u8, seed: u64) -> Tid {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_database(
        &DbGenConfig {
            k,
            domain_size: 2,
            density: 0.65,
            prob_denominator: 5,
        },
        &mut rng,
    );
    random_tid(db, 5, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zero_euler_strategy_is_sound(phi in zero_euler_fn(4)) {
        prop_assert_eq!(phi.euler_characteristic(), 0);
    }

    #[test]
    fn to_bottom_always_reaches_bottom(phi in zero_euler_fn(4)) {
        let steps = steps_to_bottom(&phi).unwrap();
        prop_assert!(apply_steps(&phi, &steps).unwrap().is_bottom());
    }

    #[test]
    fn fragmentations_are_deterministic_and_exact(phi in zero_euler_fn(4)) {
        let frag = Fragmentation::of(&phi).unwrap();
        prop_assert_eq!(frag.to_boolfn(), phi);
        prop_assert!(frag.is_deterministic());
        prop_assert!(frag.leaves.iter().all(BoolFn::is_degenerate));
    }

    #[test]
    fn pipeline_matches_brute_force(phi in zero_euler_fn(3), seed in any::<u64>()) {
        let tid = tid_from_seed(2, seed);
        let dd = compile_dd(&phi, tid.database()).unwrap();
        let q = HQuery::new(phi);
        let brute = pqe_brute_force(&q, &tid).unwrap();
        prop_assert_eq!(dd.probability_exact(&tid), brute);
    }

    #[test]
    fn extensional_matches_brute_force_on_safe_monotone(seed in any::<u64>(), raw in any::<u64>()) {
        // Upward-close a random seed set to get a monotone function.
        let mut phi = BoolFn::bottom(3);
        for v in 0..8u32 {
            if (raw >> v) & 1 == 1 {
                for sup in 0..8u32 {
                    if sup & v == v {
                        phi.set(sup, true);
                    }
                }
            }
        }
        prop_assume!(phi.euler_characteristic() == 0);
        let tid = tid_from_seed(2, seed);
        let q = HQuery::new(phi);
        let ext = pqe_extensional(&q, &tid).unwrap();
        let brute = pqe_brute_force(&q, &tid).unwrap();
        prop_assert_eq!(ext, brute);
    }

    #[test]
    fn steps_between_round_trip(a in zero_euler_fn(4), b in zero_euler_fn(4)) {
        let steps = steps_between(&a, &b).unwrap();
        prop_assert_eq!(apply_steps(&a, &steps).unwrap(), b);
    }

    #[test]
    fn compiled_circuit_probability_in_unit_interval(
        phi in zero_euler_fn(3),
        seed in any::<u64>(),
    ) {
        let tid = tid_from_seed(2, seed);
        let dd = compile_dd(&phi, tid.database()).unwrap();
        let p = dd.probability_exact(&tid);
        prop_assert!(p.is_probability(), "got {}", p);
    }
}
