//! Differential update-stream harness for incremental artifact
//! maintenance ([`PqeEngine::insert_tuple`] / [`PqeEngine::remove_tuple`]
//! / [`PqeEngine::set_probability`], DESIGN.md §9).
//!
//! The engine's claim is strong: after *any* stream of live tuple
//! updates, a patched engine is indistinguishable from one that
//! recompiled everything from scratch — same exact rationals, same f64
//! bits, same serialized artifact bytes. This harness proves it
//! differentially. Each proptest case derives a random stream of
//! insert / delete / reweight operations from one seed and, after
//! **every** step, checks three evaluators against each other for *all*
//! 272 Boolean functions with `k ≤ 2` (16 on two variables, 256 on
//! three):
//!
//! 1. the **live** engine, which has only ever been patched;
//! 2. a **fresh** engine compiled from nothing on the current instance;
//! 3. an independent **witness-mask oracle**: one pass over the `2^n`
//!    possible worlds accumulates `P[mask]`, the probability that the
//!    `h_{k,i}` truth vector equals each `mask ∈ {0,1}^{k+1}`; the
//!    answer for any `φ` is then `Σ_{φ(mask)} P[mask]`, a dot product.
//!    The oracle never touches engine code (it is built from
//!    [`h_witnesses`] + [`Tid::world_probability`]) and is itself
//!    spot-checked against [`pqe_brute_force`] on a rotating function
//!    each step.
//!
//! Named `k = 3` (φ9, a degenerate variable function, φ_max-Euler) and
//! `k = 4` (φ_no-PM) functions run the same stream discipline, and two
//! further tests pin the interactions the issue calls out: patched
//! engines must shard/batch bit-identically, and patched caches must
//! survive `save_cache`/`load_cache` and `export_delta`/`apply_delta`
//! round trips.
//!
//! [`PqeEngine::insert_tuple`]: intext_engine::PqeEngine::insert_tuple
//! [`PqeEngine::remove_tuple`]: intext_engine::PqeEngine::remove_tuple
//! [`PqeEngine::set_probability`]: intext_engine::PqeEngine::set_probability
//! [`Tid::world_probability`]: intext_tid::Tid::world_probability

mod common;

use intext_boolfn::{max_euler_fn, phi9, phi_no_pm, BoolFn};
use intext_engine::{PqeEngine, TupleUpdate};
use intext_numeric::BigRational;
use intext_query::{h_witnesses, pqe_brute_force, HQuery};
use intext_tid::{Database, Tid, TupleDesc, TupleId};
use proptest::prelude::*;

/// Stream length cap: at most `2^7 = 128` possible worlds keeps the
/// per-step brute-force sweeps over all 272 functions fast in debug
/// builds while still exercising every slot shape.
const TUPLE_CAP: usize = 7;

/// Update steps per proptest case; every step re-checks all functions.
const STEPS: usize = 4;

/// Cases per property: a deeper sweep when the CI seed knob
/// (`INTEXT_TEST_SEEDS`, see `tests/common/mod.rs` and DESIGN.md §8) asks
/// for the full statistical corpus, a fast one locally.
fn stream_cases() -> u32 {
    if common::seed_count() > common::DEFAULT_SEEDS {
        8
    } else {
        4
    }
}

/// SplitMix64: the whole op stream of a case derives from the one `u64`
/// proptest draws, so a failure reproduces from its printed case alone.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random probability with small denominator — includes the 0 and 1
/// endpoints, which stress the absorbing cases of the circuit walks.
fn rational(state: &mut u64) -> BigRational {
    let den = 1 + mix(state) % 6;
    let num = mix(state) % (den + 1);
    BigRational::from_ratio(num as i64, den)
}

/// Every tuple the vocabulary `(k, domain)` admits.
fn universe(k: u8, domain: u32) -> Vec<TupleDesc> {
    let mut all = Vec::new();
    for a in 0..domain {
        all.push(TupleDesc::R(a));
    }
    for i in 1..=k {
        for a in 0..domain {
            for b in 0..domain {
                all.push(TupleDesc::S(i, a, b));
            }
        }
    }
    for b in 0..domain {
        all.push(TupleDesc::T(b));
    }
    all
}

/// A random sub-instance of the complete `(k, domain)` database with
/// random probabilities, never empty and never above `cap` tuples.
fn random_tid(state: &mut u64, k: u8, domain: u32, cap: usize) -> Tid {
    let mut tid = Tid::new(Database::new(k, domain), Vec::new()).unwrap();
    let all = universe(k, domain);
    for &t in &all {
        if tid.len() < cap && mix(state).is_multiple_of(2) {
            let p = rational(state);
            tid.insert(t, p).unwrap();
        }
    }
    if tid.is_empty() {
        let p = rational(state);
        tid.insert(all[0], p).unwrap();
    }
    tid
}

/// One live update, as drawn by [`random_op`].
enum Op {
    Insert(TupleDesc, BigRational),
    Remove(TupleId),
    Reweight(TupleId, BigRational),
}

/// Draws the next stream op: insert-biased (half the rolls) so instances
/// stay interesting, but never above `cap` tuples and never removing
/// from an empty instance.
fn random_op(state: &mut u64, tid: &Tid, all: &[TupleDesc], cap: usize) -> Op {
    let present: Vec<TupleId> = tid.database().iter().map(|(id, _)| id).collect();
    let absent: Vec<TupleDesc> = all
        .iter()
        .copied()
        .filter(|t| !tid.database().iter().any(|(_, have)| have == *t))
        .collect();
    let can_insert = !absent.is_empty() && tid.len() < cap;
    let roll = mix(state) % 4;
    if present.is_empty() || (can_insert && roll < 2) {
        let t = absent[(mix(state) as usize) % absent.len()];
        let p = rational(state);
        Op::Insert(t, p)
    } else if roll == 2 {
        Op::Remove(present[(mix(state) as usize) % present.len()])
    } else {
        let id = present[(mix(state) as usize) % present.len()];
        let p = rational(state);
        Op::Reweight(id, p)
    }
}

/// Applies one op through the engine's live-update API (so the engine
/// patches its cache) and mirrors it into `tid`.
fn apply_op(live: &mut PqeEngine, tid: &mut Tid, op: &Op) {
    match op {
        Op::Insert(desc, p) => {
            live.insert_tuple(tid, *desc, p.clone()).unwrap();
        }
        Op::Remove(id) => {
            live.remove_tuple(tid, *id).unwrap();
        }
        Op::Reweight(id, p) => {
            live.set_probability(tid, *id, p.clone()).unwrap();
        }
    }
}

/// The witness-mask distribution `mask ↦ P[h-truth-vector = mask]`: one
/// brute-force pass over the possible worlds, independent of all engine
/// code. Indexed by mask; entries sum to 1.
fn mask_distribution(tid: &Tid) -> Vec<BigRational> {
    let db = tid.database();
    let witness_masks: Vec<Vec<u64>> = (0..=db.k())
        .map(|i| {
            h_witnesses(db, i)
                .iter()
                .map(|&(t1, t2)| (1u64 << t1.0) | (1u64 << t2.0))
                .collect()
        })
        .collect();
    let mut dist = vec![BigRational::zero(); 1 << (db.k() + 1)];
    for world in 0..(1u64 << db.len()) {
        let mut mask = 0usize;
        for (i, pairs) in witness_masks.iter().enumerate() {
            let covered = |m: u64| world & m == m;
            if pairs.iter().any(|&m| covered(m)) {
                mask |= 1 << i;
            }
        }
        dist[mask] = &dist[mask] + &tid.world_probability(world);
    }
    dist
}

/// `P(Q_φ)` from the mask distribution: `Σ_{mask : φ(mask)} P[mask]`.
fn oracle_answer(phi: &BoolFn, dist: &[BigRational]) -> BigRational {
    dist.iter()
        .enumerate()
        .filter(|&(mask, _)| phi.eval(mask as u32))
        .fold(BigRational::zero(), |acc, (_, p)| &acc + p)
}

/// Checks live vs fresh vs oracle for one function on the current
/// instance: exact rationals on both engines, f64 bits across engines.
fn check_function(
    phi: &BoolFn,
    live: &mut PqeEngine,
    fresh: &mut PqeEngine,
    tid: &Tid,
    dist: &[BigRational],
    context: &str,
) {
    let q = HQuery::new(phi.clone());
    let expected = oracle_answer(phi, dist);
    let live_p = live.evaluate(&q, tid).unwrap();
    assert_eq!(live_p, expected, "{context}: patched engine vs oracle");
    let fresh_p = fresh.evaluate(&q, tid).unwrap();
    assert_eq!(live_p, fresh_p, "{context}: patched vs fresh compile");
    let live_bits = live.evaluate_f64(&q, tid).unwrap().to_bits();
    let fresh_bits = fresh.evaluate_f64(&q, tid).unwrap().to_bits();
    assert_eq!(live_bits, fresh_bits, "{context}: f64 bit identity");
}

/// After a stream, every artifact the live engine still holds for the
/// current shape must serialize byte-identically to a fresh compile —
/// patching may never leave a structurally different (even if
/// semantically equal) circuit behind. Returns how many were compared.
fn assert_artifacts_byte_identical(live: &PqeEngine, tid: &Tid, fns: &[BoolFn]) -> usize {
    let mut fresh = PqeEngine::new();
    let mut compared = 0;
    for phi in fns {
        let q = HQuery::new(phi.clone());
        if let Ok(patched_bytes) = live.export_artifact(&q, tid.database()) {
            fresh.evaluate(&q, tid).unwrap();
            let fresh_bytes = fresh.export_artifact(&q, tid.database()).unwrap();
            assert_eq!(
                patched_bytes,
                fresh_bytes,
                "patched artifact for φ table {:#x} is not byte-identical",
                phi.table_u64()
            );
            compared += 1;
        }
    }
    compared
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(stream_cases()))]

    /// The main differential property: random update streams on k = 1
    /// and k = 2 instances, every step checked for all 272 functions.
    #[test]
    fn update_streams_match_fresh_compiles_and_oracle(seed in any::<u64>()) {
        for k in 1u8..=2 {
            let mut state = seed ^ u64::from(k);
            let all = universe(k, 2);
            let mut tid = random_tid(&mut state, k, 2, TUPLE_CAP);
            let tables: u64 = 1 << (1u64 << (k + 1));
            let fns: Vec<BoolFn> =
                (0..tables).map(|t| BoolFn::from_table_u64(k + 1, t)).collect();

            // Warm the live engine so the stream patches real artifacts.
            let mut live = PqeEngine::new();
            for phi in &fns {
                live.evaluate(HQuery::new(phi.clone()), &tid).unwrap();
            }

            let mut structural = false;
            for step in 0..STEPS {
                let op = random_op(&mut state, &tid, &all, TUPLE_CAP);
                structural |= matches!(op, Op::Insert(..) | Op::Remove(..));
                apply_op(&mut live, &mut tid, &op);

                let dist = mask_distribution(&tid);
                let total = dist
                    .iter()
                    .fold(BigRational::zero(), |acc, p| &acc + p);
                prop_assert!(total.is_one(), "mask distribution must sum to 1");

                let mut fresh = PqeEngine::new();
                for phi in &fns {
                    let context = format!(
                        "k={k} step={step} φ table {:#x}",
                        phi.table_u64()
                    );
                    check_function(phi, &mut live, &mut fresh, &tid, &dist, &context);
                }

                // Cross-validate the oracle itself against the reference
                // brute-force evaluator on one rotating function.
                let spot = &fns[(mix(&mut state) % tables) as usize];
                let q = HQuery::new(spot.clone());
                prop_assert_eq!(
                    pqe_brute_force(&q, &tid).unwrap(),
                    oracle_answer(spot, &dist),
                    "oracle disagrees with pqe_brute_force at k={} step={}", k, step
                );
            }

            let compared = assert_artifacts_byte_identical(&live, &tid, &fns);
            prop_assert!(compared > 0, "no cacheable artifact survived the stream");
            if structural {
                prop_assert!(
                    live.stats().patches_applied > 0,
                    "structural ops must exercise the patch path"
                );
            }
        }
    }
}

/// The named larger-`k` functions from the paper ride the same stream
/// discipline: φ9 (k = 3, the d-D flagship), a degenerate variable
/// function (OBDD route), φ_max-Euler (hard region, brute-forced), and
/// φ_no-PM (k = 4, zero Euler characteristic). Oracle here is
/// `pqe_brute_force` directly — few functions, so no need for the mask
/// distribution.
#[test]
fn named_k3_and_k4_functions_survive_update_streams() {
    let cases: [(u8, u32, Vec<BoolFn>); 2] = [
        (3, 2, vec![phi9(), BoolFn::var(4, 0), max_euler_fn(4)]),
        (4, 1, vec![phi_no_pm(), BoolFn::var(5, 0)]),
    ];
    for (k, domain, fns) in cases {
        let mut state = 0xFEED ^ (u64::from(k) << 8) ^ u64::from(domain);
        let all = universe(k, domain);
        let cap = TUPLE_CAP.min(all.len());
        let mut tid = random_tid(&mut state, k, domain, cap);

        let mut live = PqeEngine::new();
        for phi in &fns {
            live.evaluate(HQuery::new(phi.clone()), &tid).unwrap();
        }

        let mut structural = false;
        for step in 0..10 {
            let op = random_op(&mut state, &tid, &all, cap);
            structural |= matches!(op, Op::Insert(..) | Op::Remove(..));
            apply_op(&mut live, &mut tid, &op);

            let mut fresh = PqeEngine::new();
            for phi in &fns {
                let q = HQuery::new(phi.clone());
                let reference = pqe_brute_force(&q, &tid).unwrap();
                let live_p = live.evaluate(&q, &tid).unwrap();
                assert_eq!(live_p, reference, "k={k} step={step}: live vs brute force");
                let fresh_p = fresh.evaluate(&q, &tid).unwrap();
                assert_eq!(live_p, fresh_p, "k={k} step={step}: patched vs fresh");
                assert_eq!(
                    live.evaluate_f64(&q, &tid).unwrap().to_bits(),
                    fresh.evaluate_f64(&q, &tid).unwrap().to_bits(),
                    "k={k} step={step}: f64 bit identity"
                );
            }
        }

        let compared = assert_artifacts_byte_identical(&live, &tid, &fns);
        assert!(
            compared >= 2,
            "k={k}: the OBDD and d-D artifacts must be cacheable"
        );
        assert!(
            structural,
            "ten insert-biased steps always include a structural op"
        );
        assert!(
            live.stats().patches_applied > 0,
            "k={k}: structural ops must exercise the patch path"
        );
    }
}

/// Patch-then-shard invariance: after live updates, the batch paths —
/// sequential, sharded, and the f64 lane kernel — must all agree with
/// each other and with brute force on every scenario, exactly as they
/// would on a freshly compiled engine.
#[test]
fn patched_engines_shard_and_batch_identically() {
    let mut state = 0xC0FFEE;
    let q = HQuery::new(phi9());
    let mut tid = random_tid(&mut state, 3, 2, 8);
    let mut live = PqeEngine::new();
    live.evaluate(&q, &tid).unwrap();

    // Deterministic structural churn: remove a tuple, put it back, then
    // grow the instance by one — three patches of the cached circuit.
    let (desc, p) = live.remove_tuple(&mut tid, TupleId(0)).unwrap();
    live.insert_tuple(&mut tid, desc, p).unwrap();
    if let Some(&fresh_tuple) = universe(3, 2)
        .iter()
        .find(|t| !tid.database().iter().any(|(_, have)| have == **t))
    {
        let p = rational(&mut state);
        live.insert_tuple(&mut tid, fresh_tuple, p).unwrap();
    }
    assert!(
        live.stats().patches_applied >= 1,
        "the φ9 circuit must patch across single-tuple churn"
    );

    let scenarios: Vec<Tid> = (0..12)
        .map(|_| {
            let mut scenario = tid.clone();
            for id in 0..scenario.len() as u32 {
                let p = rational(&mut state);
                scenario.set_prob(TupleId(id), p).unwrap();
            }
            scenario
        })
        .collect();

    let sequential = live.evaluate_batch(&q, &scenarios).unwrap();
    let sharded = live.evaluate_batch_sharded(&q, &scenarios, 3).unwrap();
    assert_eq!(
        sequential, sharded,
        "sharded exact batch must be bit-identical"
    );
    for (scenario, answer) in scenarios.iter().zip(&sequential) {
        assert_eq!(
            answer,
            &pqe_brute_force(&q, scenario).unwrap(),
            "batch answer vs brute force"
        );
    }

    let sequential_f64: Vec<u64> = live
        .evaluate_batch_f64(&q, &scenarios)
        .unwrap()
        .into_iter()
        .map(f64::to_bits)
        .collect();
    let sharded_f64: Vec<u64> = live
        .evaluate_batch_sharded_f64(&q, &scenarios, 4)
        .unwrap()
        .into_iter()
        .map(f64::to_bits)
        .collect();
    assert_eq!(
        sequential_f64, sharded_f64,
        "lane-kernel shards must be bit-identical"
    );
}

/// Patch-then-persist invariance: a patched cache round-trips through
/// `save_cache`/`load_cache`, and a serialized delta patches a warm
/// replica to the same bits as the source.
#[test]
fn patched_caches_round_trip_through_store_and_deltas() {
    let mut state = 0xBEEF;
    let fns = [phi9(), BoolFn::var(4, 0)];
    let mut tid = random_tid(&mut state, 3, 2, 8);

    let mut live = PqeEngine::new();
    let mut replica = PqeEngine::new();
    for phi in &fns {
        live.evaluate(HQuery::new(phi.clone()), &tid).unwrap();
        replica.evaluate(HQuery::new(phi.clone()), &tid).unwrap();
    }

    // Ship one update as a delta: export against the *pre-update* shape,
    // apply locally, then let the replica patch itself from the blob.
    let update = TupleUpdate::Remove { id: 0 };
    let delta = live
        .export_delta(&HQuery::new(phi9()), tid.database(), &update)
        .unwrap();
    live.remove_tuple(&mut tid, TupleId(0)).unwrap();
    let report = replica.apply_delta(&delta).unwrap();
    assert_eq!(report.artifacts, 1);
    assert!(
        replica.stats().patches_applied >= 1,
        "a warm replica applies a delta by patching, not recompiling"
    );
    for phi in &fns {
        let q = HQuery::new(phi.clone());
        let source = live.evaluate(&q, &tid).unwrap();
        assert_eq!(
            source,
            replica.evaluate(&q, &tid).unwrap(),
            "replica drifted"
        );
        assert_eq!(
            source,
            pqe_brute_force(&q, &tid).unwrap(),
            "source vs brute force"
        );
    }

    // The patched cache snapshot loads into a cold engine that answers
    // bit-identically and hits the cache.
    let snapshot = live.save_cache();
    let mut cold = PqeEngine::new();
    let loaded = cold.load_cache(&snapshot).unwrap();
    assert_eq!(loaded.artifacts, live.cache_len());
    for phi in &fns {
        let q = HQuery::new(phi.clone());
        assert_eq!(
            live.evaluate(&q, &tid).unwrap(),
            cold.evaluate(&q, &tid).unwrap(),
            "loaded cache must answer like the patched source"
        );
        assert_eq!(
            live.evaluate_f64(&q, &tid).unwrap().to_bits(),
            cold.evaluate_f64(&q, &tid).unwrap().to_bits(),
            "f64 bit identity through the store"
        );
    }
    assert!(
        cold.stats().cache_hits >= 1,
        "loaded artifacts must serve hits"
    );
}
