//! Sharded batch evaluation and the bounded artifact cache:
//!
//! * `evaluate_batch_sharded` is **bit-identical** to the sequential
//!   `evaluate_batch` for every Boolean function with `k ≤ 2` on
//!   randomized TIDs, across shard counts,
//! * per-shard `EngineStats` merged back equal the sequential totals,
//! * the LRU cache evicts exactly the least-recently-used artifact at
//!   the gate budget, recompiles on next access, never exceeds the
//!   budget, and its eviction counters reconcile with compile counts.
//!
//! CI runs this file twice — under `RUST_TEST_THREADS=1` and under the
//! default parallel harness — to catch accidental shared state between
//! the engine's worker threads and the test harness's own parallelism.

use intext::boolfn::{phi9, BoolFn};
use intext::engine::{EngineConfig, PqeEngine};
use intext::numeric::BigRational;
use intext::query::HQuery;
use intext::tid::{
    complete_database, random_database, random_tid, uniform_tid, DbGenConfig, Tid, TupleId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn half() -> BigRational {
    BigRational::from_ratio(1, 2)
}

/// `count` probability scenarios over one database shape: the base TID
/// with one random tuple re-weighted per scenario.
fn reweighted_scenarios(base: &Tid, count: usize, rng: &mut StdRng) -> Vec<Tid> {
    (0..count)
        .map(|_| {
            let mut tid = base.clone();
            let tuple = TupleId(rng.random_range(0..tid.len() as u32));
            let denom = rng.random_range(2..30u64);
            tid.set_prob(tuple, BigRational::from_ratio(1, denom))
                .unwrap();
            tid
        })
        .collect()
}

/// The counter halves of two `EngineStats` (everything except wall-clock
/// durations, which legitimately differ between runs).
fn counters(s: &intext::engine::EngineStats) -> [u64; 8] {
    [
        s.queries,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.obdd_plans,
        s.dd_plans,
        s.extensional_plans,
        s.brute_force_plans,
    ]
}

/// Sharded ≡ sequential, bit for bit, for **all** 272 Boolean functions
/// with `k ≤ 2` (16 at k = 1, 256 at k = 2) on randomized TIDs — every
/// backend included: OBDD, d-D, and brute force all flow through the
/// same shard workers.
#[test]
fn sharded_equals_sequential_for_all_small_phi() {
    let mut rng = StdRng::seed_from_u64(1820);
    for k in 1..=2u8 {
        let db = random_database(
            &DbGenConfig {
                k,
                domain_size: 2,
                density: 0.75,
                prob_denominator: 6,
            },
            &mut rng,
        );
        let base = random_tid(db, 6, &mut rng);
        let scenarios = reweighted_scenarios(&base, 3, &mut rng);
        let mut sequential = PqeEngine::new();
        let mut sharded = PqeEngine::new();
        let n = k + 1;
        for table in 0..(1u64 << (1u32 << n)) {
            let phi = BoolFn::from_table_u64(n, table);
            let q = HQuery::new(phi);
            let expected = sequential.evaluate_batch(&q, &scenarios).unwrap();
            let got = sharded.evaluate_batch_sharded(&q, &scenarios, 3).unwrap();
            assert_eq!(got, expected, "k={k}, table {table:#x}");
        }
        // The sweeps exercised every backend and agreed throughout, so
        // their lifetime counters must line up exactly.
        assert_eq!(
            counters(sequential.stats()),
            counters(sharded.stats()),
            "k={k}"
        );
        assert!(sharded.stats().brute_force_plans > 0, "k={k}");
        assert!(sharded.stats().obdd_plans > 0, "k={k}");
        if k >= 2 {
            assert!(sharded.stats().dd_plans > 0, "k={k}");
        }
    }
}

/// Shard counts are a performance knob, never a semantics knob: every
/// shard count (including degenerate ones) returns the same bits.
#[test]
fn shard_count_never_changes_the_answer() {
    let mut rng = StdRng::seed_from_u64(77);
    let base = uniform_tid(complete_database(3, 2), half());
    let scenarios = reweighted_scenarios(&base, 13, &mut rng);
    let q = HQuery::new(phi9());
    let mut sequential = PqeEngine::new();
    let expected = sequential.evaluate_batch(&q, &scenarios).unwrap();
    for shards in [0, 1, 2, 4, 8, 13, 1000] {
        let mut engine = PqeEngine::new();
        let got = engine
            .evaluate_batch_sharded(&q, &scenarios, shards)
            .unwrap();
        assert_eq!(got, expected, "shards={shards}");
        let batch = engine.stats().last_batch.unwrap();
        assert_eq!(batch.scenarios, 13);
        assert!(
            batch.shards >= 1 && batch.shards <= 13,
            "requested {shards}, spawned {}",
            batch.shards
        );
    }
}

/// Merged per-shard stats equal the sequential totals: same query count,
/// same hit/miss/eviction split, same per-plan routing — and the
/// amortization story (one compile, N − 1 shared walks) is visible in
/// both the counters and the recorded `BatchPlan`.
#[test]
fn merged_shard_stats_equal_sequential_totals() {
    let mut rng = StdRng::seed_from_u64(4096);
    let base = uniform_tid(complete_database(3, 2), half());
    let scenarios = reweighted_scenarios(&base, 24, &mut rng);
    let q = HQuery::new(phi9());

    let mut sequential = PqeEngine::new();
    sequential.evaluate_batch(&q, &scenarios).unwrap();
    let mut sharded = PqeEngine::new();
    sharded.evaluate_batch_sharded(&q, &scenarios, 4).unwrap();

    assert_eq!(counters(sequential.stats()), counters(sharded.stats()));
    assert_eq!(sharded.stats().queries, 24);
    assert_eq!(sharded.stats().cache_misses, 1, "one compile for the batch");
    assert_eq!(sharded.stats().cache_hits, 23);
    // The sequential engine records per-query `last`; the sharded one
    // must too (the last scenario of the last shard).
    assert!(sharded.stats().last.is_some());
    let batch = sharded.stats().last_batch.unwrap();
    assert_eq!((batch.compiles, batch.shared), (1, 23));
    assert_eq!(batch.shards, 4);
    assert!(sequential.stats().last_batch.is_none());
}

/// The LRU story end to end through the engine: exactly-at-budget fits,
/// one artifact over evicts exactly the least-recently-used entry, the
/// next access to the victim recompiles, the budget is never exceeded,
/// and `cache_misses = distinct shapes + recompiles after eviction`.
#[test]
fn lru_evicts_the_least_recently_used_at_budget_and_recompiles() {
    let q = HQuery::new(phi9());
    // Three database shapes; artifact size grows with the domain, so
    // `tiny`'s artifact is the smallest.
    let mid = uniform_tid(complete_database(3, 2), half());
    let big = uniform_tid(complete_database(3, 3), half());
    let tiny = uniform_tid(complete_database(3, 1), half());

    // Probe the artifact sizes with an unbounded engine.
    let mut probe = PqeEngine::new();
    probe.evaluate(&q, &mid).unwrap();
    let mid_gates = probe.cache_gates();
    probe.evaluate(&q, &big).unwrap();
    let budget = probe.cache_gates(); // mid + big exactly
    probe.evaluate(&q, &tiny).unwrap();
    let tiny_gates = probe.cache_gates() - budget;
    assert!(tiny_gates < mid_gates, "sizes must grow with the domain");

    let mut engine = PqeEngine::with_config(EngineConfig {
        cache_gate_budget: Some(budget),
        ..EngineConfig::default()
    });
    engine.evaluate(&q, &mid).unwrap();
    engine.evaluate(&q, &big).unwrap();
    assert_eq!(engine.cache_gates(), budget, "exactly at budget");
    assert_eq!(engine.stats().cache_evictions, 0, "at budget ⟹ no eviction");

    // Touch `mid` so `big` becomes the least recently used...
    engine.evaluate(&q, &mid).unwrap();
    // ...then overflow with `tiny`: exactly `big` must be evicted.
    engine.evaluate(&q, &tiny).unwrap();
    assert!(engine.cache_gates() <= budget, "budget is a hard bound");
    assert_eq!(engine.stats().cache_evictions, 1);
    assert_eq!(engine.cache_len(), 2);
    assert!(engine.explain(&q, &mid).cached, "recently used survives");
    assert!(engine.explain(&q, &tiny).cached, "fresh insert survives");
    assert!(!engine.explain(&q, &big).cached, "LRU victim is gone");

    // The victim recompiles on next access — a fresh cache miss.
    let misses_before = engine.stats().cache_misses;
    engine.evaluate(&q, &big).unwrap();
    assert_eq!(engine.stats().cache_misses, misses_before + 1);
    assert!(engine.cache_gates() <= budget);

    // Reconciliation: every miss is either a distinct shape's first
    // compile or a post-eviction recompile.
    let distinct_shapes = 3;
    let recompiles_after_eviction = 1;
    assert_eq!(
        engine.stats().cache_misses,
        distinct_shapes + recompiles_after_eviction
    );
    assert_eq!(
        engine.stats().cache_evictions,
        2,
        "re-inserting big evicted again"
    );
}

/// A budget-constrained engine stays bit-identical under sharding even
/// when the batch itself thrashes the cache (interleaved shapes, budget
/// holding only one artifact at a time): precompute mirrors the
/// sequential access order, so hits, misses, and evictions all agree.
#[test]
fn tight_budget_sharded_batch_is_still_bit_identical() {
    let q = HQuery::new(phi9());
    let shape_a = uniform_tid(complete_database(3, 1), half());
    let shape_b = uniform_tid(complete_database(3, 2), half());
    // A B A B A B: worst case for an LRU that can hold only one.
    let scenarios: Vec<Tid> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                shape_a.clone()
            } else {
                shape_b.clone()
            }
        })
        .collect();
    let config = EngineConfig {
        // Big enough for either artifact alone, never for both.
        cache_gate_budget: Some({
            let mut probe = PqeEngine::new();
            probe.evaluate(&q, &shape_b).unwrap();
            probe.cache_gates()
        }),
        ..EngineConfig::default()
    };

    let mut sequential = PqeEngine::with_config(config);
    let expected = sequential.evaluate_batch(&q, &scenarios).unwrap();
    let mut sharded = PqeEngine::with_config(config);
    let got = sharded.evaluate_batch_sharded(&q, &scenarios, 3).unwrap();

    assert_eq!(got, expected);
    assert_eq!(counters(sequential.stats()), counters(sharded.stats()));
    // Every evaluation of either shape misses: the other evaluation
    // always evicted it in between.
    assert_eq!(sharded.stats().cache_misses, 6);
    assert_eq!(sharded.stats().cache_evictions, 5);
    assert!(sharded.cache_gates() <= sharded.cache_budget().unwrap());
}
