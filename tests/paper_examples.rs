//! E1–E6: the paper's worked examples and figures, as executable
//! assertions (see EXPERIMENTS.md for the index).

use intext::boolfn::{phi9, phi_no_pm, BoolFn, Valuation};
use intext::core::{apply_steps, fetch_path, steps_to_bottom, Step, StepKind};
use intext::lattice::{cnf_lattice, mobius_euler, p_cnf, p_dnf, p_phi};
use intext::matching::{check_conjecture1, sat_has_pm, unsat_has_pm, verify_conjecture1_monotone};
use intext::numeric::BigRational;

#[test]
fn e1_figure_2_cnf_lattice_of_phi9() {
    // Nine elements, the exact Möbius values of Figure 2, µ(0̂,1̂) = 0.
    let lat = cnf_lattice(&phi9());
    assert_eq!(lat.len(), 9);
    assert_eq!(lat.mobius_bottom_top(), 0);
    let mu_of = |d: u32| {
        let i = lat.elements.iter().position(|&e| e == d).expect("element");
        lat.mobius_to_top[i]
    };
    assert_eq!(mu_of(0b0000), 1);
    assert_eq!(mu_of(0b0111), -1);
    assert_eq!(mu_of(0b1001), -1);
    assert_eq!(mu_of(0b1010), -1);
    assert_eq!(mu_of(0b1100), -1);
    assert_eq!(mu_of(0b1011), 1);
    assert_eq!(mu_of(0b1101), 1);
    assert_eq!(mu_of(0b1110), 1);
    assert_eq!(mu_of(0b1111), 0);
}

#[test]
fn e2_example_3_6_phi9_is_safe() {
    // Lemma 3.8 ties the three quantities together on phi9.
    let me = mobius_euler(&phi9());
    assert_eq!(me.euler, 0);
    assert_eq!(me.mobius_cnf, 0);
    assert_eq!(me.mobius_dnf, 0);
}

#[test]
fn e3_figure_3_colored_graph_of_phi9() {
    // SAT(phi9) per Example 4.3: 8 colored nodes, the ones listed.
    let f = phi9();
    let colored: Vec<u32> = f.sat_vec();
    assert_eq!(colored.len(), 8);
    for v in [
        0b1001u32, 0b1011, 0b1100, 0b1101, 0b1010, 0b1110, 0b0111, 0b1111,
    ] {
        assert!(f.eval(v), "{} must be colored", Valuation(v));
    }
    // The empty valuation and all singletons are uncolored.
    for v in [0b0000u32, 0b0001, 0b0010, 0b0100, 0b1000] {
        assert!(!f.eval(v), "{} must be uncolored", Valuation(v));
    }
}

#[test]
fn e4_figure_4_chainswap_trace() {
    // A 5-node path with one colored endpoint, as in Figure 4: the
    // transformation moves the colored node to the other end in four
    // elementary steps (2 additions + 2 removals), every intermediate
    // function valid per Definition 5.5.
    // Path in the 3-cube: {0} - {} - {1} - {1,2} - {2} ... must alternate
    // adjacency: 001 - 000 - 010 - 110 - 100.
    let path = [0b001u32, 0b000, 0b010, 0b110, 0b100];
    for w in path.windows(2) {
        assert_eq!((w[0] ^ w[1]).count_ones(), 1);
    }
    let start = BoolFn::from_sat(3, [path[4]]); // colored at the far end
    let steps = vec![
        Step {
            kind: StepKind::Add,
            nu: path[0],
            var: 0,
        }, // color ν0,ν1
        Step {
            kind: StepKind::Add,
            nu: path[2],
            var: 2,
        }, // color ν2,ν3
        Step {
            kind: StepKind::Remove,
            nu: path[1],
            var: 1,
        }, // uncolor ν1,ν2
        Step {
            kind: StepKind::Remove,
            nu: path[3],
            var: 1,
        }, // uncolor ν3,ν4
    ];
    let end = apply_steps(&start, &steps).expect("all four steps valid");
    assert_eq!(end.sat_vec(), vec![path[0]], "token moved across the path");
}

#[test]
fn e5_figure_5_phi_no_pm_witness() {
    let f = phi_no_pm();
    assert_eq!(f.euler_characteristic(), 0);
    assert!(!sat_has_pm(&f), "colored side has no perfect matching");
    assert!(
        !unsat_has_pm(&f),
        "non-colored side has no perfect matching"
    );
    // Yet the two-sided transformation reaches ⊥ (Proposition 5.9):
    let steps = steps_to_bottom(&f).unwrap();
    assert!(apply_steps(&f, &steps).unwrap().is_bottom());
    // and must use both directions.
    assert!(steps.iter().any(|s| s.kind == StepKind::Add));
    assert!(steps.iter().any(|s| s.kind == StepKind::Remove));
    // Conjecture 1 does not apply (f is not monotone) and indeed fails:
    assert!(!check_conjecture1(&f).holds());
    assert!(!f.is_monotone());
}

#[test]
fn e7_conjecture_1_holds_for_monotone_k_up_to_4() {
    for n in 2..=5u8 {
        let report = verify_conjecture1_monotone(n);
        assert!(
            report.holds(),
            "k={} counterexamples: {:?}",
            n - 1,
            report.counterexamples
        );
    }
}

#[test]
fn lemma_b5_polynomials_evaluate_equal_at_rational_points() {
    let phi = phi9();
    let (p, pc, pd) = (p_phi(&phi), p_cnf(&phi), p_dnf(&phi));
    for (num, den) in [(0i64, 1u64), (1, 1), (1, 2), (1, 3), (2, 7), (9, 10)] {
        let t = BigRational::from_ratio(num, den);
        assert_eq!(p.eval(&t), pc.eval(&t), "P_CNF at {num}/{den}");
        assert_eq!(p.eval(&t), pd.eval(&t), "P_DNF at {num}/{den}");
    }
}

#[test]
fn fetching_lemma_contract_on_the_running_example() {
    let path = fetch_path(&phi9()).expect("both parities satisfied");
    assert!(path.len() >= 2);
    assert!(phi9().eval(path[0]) && phi9().eval(*path.last().unwrap()));
}
