//! The Monte-Carlo anytime backend, cross-validated against exact
//! evaluation:
//!
//! * every hard-region `φ` with `k ≤ 2` gets a sampled estimate within
//!   its advertised `ε` of `pqe_brute_force` (fixed seed, `δ = 10⁻⁶`,
//!   so a violation is a sampler bug, not bad luck),
//! * the `(ε, δ)` contract holds statistically: across the seed corpus
//!   (`tests/common/mod.rs` — 50 seeds locally, 400 in CI via
//!   `INTEXT_TEST_SEEDS`) the violation count stays at or below
//!   `⌊δ · R⌋` (tolerance derived at the test),
//! * sampling is deterministic — same `(seed, ε, δ)` ⟹ bit-identical
//!   estimates across repeated calls and engine instances — and
//!   sharding-invariant: mixed hard/easy batches return the same bits
//!   for every shard count `0..=16`, with merged sample counters equal
//!   to the sequential run,
//! * `explain()` names the sampler and the region for all three hard
//!   regions, sampling stays opt-in (`Intractable` when disabled), and
//!   `plan_batch` dry runs report the compile/sample split.
//!
//! CI runs this file under both `RUST_TEST_THREADS=1` and the default
//! parallel harness, mirroring `engine_sharding.rs`.

use intext::boolfn::{max_euler_fn, BoolFn};
use intext::core::{classify, Region};
use intext::engine::{
    EngineConfig, EngineError, EngineStats, Plan, PqeEngine, SamplerKind, SamplingConfig,
};
use intext::numeric::BigRational;
use intext::query::{pqe_brute_force, HQuery};
use intext::tid::{complete_database, uniform_tid, Tid, TupleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;

fn half() -> BigRational {
    BigRational::from_ratio(1, 2)
}

/// An engine that samples hard instances beyond a tiny brute-force
/// budget, so every complete database with domain ≥ 1 at `k ≥ 2` (and
/// domain ≥ 2 at `k = 1`) routes through the sampler.
fn sampling_engine(seed: u64, eps: f64, delta: f64) -> PqeEngine {
    PqeEngine::with_config(EngineConfig {
        max_brute_force_tuples: 4,
        sampling: Some(SamplingConfig {
            eps,
            delta,
            seed,
            ..SamplingConfig::default()
        }),
        ..EngineConfig::default()
    })
}

fn is_hard(region: Region) -> bool {
    matches!(
        region,
        Region::HardMonotone | Region::HardByTransfer | Region::ConjecturedHard
    )
}

/// The counter halves of two `EngineStats`, sampling included
/// (wall-clock durations legitimately differ between runs, and lane
/// kernel calls from *circuit walks* depend on chunk boundaries — but
/// `samples_drawn` must not).
fn counters(s: &EngineStats) -> [u64; 10] {
    [
        s.queries,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.obdd_plans,
        s.dd_plans,
        s.extensional_plans,
        s.brute_force_plans,
        s.sample_plans,
        s.samples_drawn,
    ]
}

/// Cross-validation sweep: for **every** hard-region Boolean function
/// with `k ≤ 2` on the complete domain-2 database, the sampled estimate
/// lands within its advertised `ε` of the exact brute-force answer.
/// `δ = 10⁻⁶` makes an honest miss essentially impossible, and the
/// fixed seed makes the run reproducible either way. The sweep must
/// exercise both hard sub-regions reachable at `k ≤ 2` and both
/// samplers (Karp–Luby for monotone `φ`, naive worlds otherwise).
#[test]
fn estimates_land_within_eps_of_brute_force_for_every_hard_small_phi() {
    let mut hard_seen = 0usize;
    let mut regions_seen = [false; 3];
    let mut samplers_seen = [false; 2];
    for k in 1..=2u8 {
        let tid = uniform_tid(complete_database(k, 2), half());
        assert!(tid.len() > 4, "instance must exceed the brute-force budget");
        let n = k + 1;
        for table in 0..(1u64 << (1u32 << n)) {
            let phi = BoolFn::from_table_u64(n, table);
            let region = classify(&phi);
            if !is_hard(region) {
                continue;
            }
            hard_seen += 1;
            regions_seen[match region {
                Region::HardMonotone => 0,
                Region::HardByTransfer => 1,
                _ => 2,
            }] = true;
            let q = HQuery::new(phi);
            let exact = pqe_brute_force(&q, &tid).unwrap().to_f64();
            let mut engine = sampling_engine(0xA11CE, 0.1, 1e-6);
            let est = engine.estimate(&q, &tid).unwrap();
            let kind = est.sampler.expect("hard instance must have sampled");
            samplers_seen[matches!(kind, SamplerKind::NaiveWorlds) as usize] = true;
            assert!(
                (est.value - exact).abs() <= est.eps,
                "k={k} table={table:#x} ({kind}): estimate {} vs exact {exact}, ε = {}",
                est.value,
                est.eps,
            );
            assert!(!est.deadline_hit, "no deadline was configured");
            assert!(est.samples > 0, "k={k} table={table:#x} drew no samples");
            assert_eq!(est.delta, 1e-6);
        }
    }
    assert!(
        hard_seen > 20,
        "sweep too small: {hard_seen} hard functions"
    );
    assert!(regions_seen[0], "no HardMonotone function swept");
    assert!(regions_seen[1], "no HardByTransfer function swept");
    assert!(samplers_seen[0], "Karp–Luby never chosen");
    assert!(samplers_seen[1], "naive world sampler never chosen");
}

/// `ConjecturedHard` (`e(φ)` beyond the monotone range) first appears at
/// `k = 3` via `φ_max-Euler`; validate it separately on a domain-1
/// database where the exact answer is still cheap.
#[test]
fn conjectured_hard_region_is_sampled_and_cross_validated() {
    let phi = max_euler_fn(4);
    assert_eq!(classify(&phi), Region::ConjecturedHard);
    let q = HQuery::new(phi);
    let tid = uniform_tid(complete_database(3, 1), half());
    assert!(tid.len() > 4);
    let exact = pqe_brute_force(&q, &tid).unwrap().to_f64();
    let mut engine = sampling_engine(0x5EED, 0.1, 1e-6);
    let est = engine.estimate(&q, &tid).unwrap();
    // φ_max-Euler is non-monotone, so there is no DNF to Karp–Luby over.
    assert_eq!(est.sampler, Some(SamplerKind::NaiveWorlds));
    assert!(
        (est.value - exact).abs() <= est.eps,
        "estimate {} vs exact {exact}",
        est.value
    );
}

/// The statistical contract itself: an `(ε, δ)` estimator may miss by
/// more than `ε` with probability at most `δ`. Run `R` independently
/// seeded engines per sampler at `(ε, δ) = (0.15, 0.05)` and count
/// violations; `R` comes from the shared corpus (`common::seed_count`):
/// 50 locally, 400 in CI via `INTEXT_TEST_SEEDS=400`.
///
/// Tolerance, derived for both sizes: under the guarantee, violations
/// are Binomial(R, p) with p ≤ δ, so the mean is at most `δ · R` —
/// `2.5` at `R = 50`, `20` at `R = 400` — and we assert
/// `violations ≤ ⌊δ · R⌋` (`2` and `20` respectively). That is tight
/// against the *guarantee* but very loose against *reality*: the
/// Hoeffding sample count is conservative by orders of magnitude, so
/// the observed count is 0 for every seed in the 400-seed corpus — of
/// which the 50-seed default is a prefix (`BASE_SEED + r`), so the
/// small run can never flag anything the full run would not (and the
/// fixed base seed makes either run deterministic regardless).
#[test]
fn violation_rate_respects_delta_for_both_samplers() {
    let r_total: u64 = common::seed_count();
    const EPS: f64 = 0.15;
    const DELTA: f64 = 0.05;
    let cases = [
        // Monotone hard ⟹ Karp–Luby over the grounded DNF.
        (BoolFn::from_fn(3, |v| v != 0), SamplerKind::KarpLuby),
        // Non-monotone hard ⟹ naive world sampling through the kernel.
        (
            BoolFn::from_sat(3, [0b001, 0b010, 0b000]),
            SamplerKind::NaiveWorlds,
        ),
    ];
    let tid = uniform_tid(complete_database(2, 2), half());
    for (phi, expected_kind) in cases {
        assert!(is_hard(classify(&phi)));
        let q = HQuery::new(phi);
        let exact = pqe_brute_force(&q, &tid).unwrap().to_f64();
        let mut violations = 0u64;
        for r in 0..r_total {
            let mut engine = sampling_engine(common::BASE_SEED + r, EPS, DELTA);
            let est = engine.estimate(&q, &tid).unwrap();
            assert_eq!(est.sampler, Some(expected_kind));
            if (est.value - exact).abs() > est.eps {
                violations += 1;
            }
        }
        assert!(
            violations <= (DELTA * r_total as f64) as u64,
            "{expected_kind}: {violations} violations out of {r_total} runs \
             exceeds ⌊δR⌋ = {}",
            (DELTA * r_total as f64) as u64
        );
    }
}

/// Determinism: the estimate is a pure function of `(seed, ε, δ, φ,
/// instance)`. Repeated calls on one engine and calls on a fresh engine
/// with the same config return bit-identical estimates; a different
/// seed is allowed to (and here does) move the value.
#[test]
fn same_seed_means_bit_identical_estimates() {
    let tid = uniform_tid(complete_database(2, 2), half());
    for phi in [
        BoolFn::from_fn(3, |v| v != 0),
        BoolFn::from_sat(3, [0b001, 0b010, 0b000]),
    ] {
        let q = HQuery::new(phi);
        let mut a = sampling_engine(9, 0.1, 1e-3);
        let mut b = sampling_engine(9, 0.1, 1e-3);
        let first = a.estimate(&q, &tid).unwrap();
        let again = a.estimate(&q, &tid).unwrap();
        let fresh = b.estimate(&q, &tid).unwrap();
        assert_eq!(first.value.to_bits(), again.value.to_bits());
        assert_eq!(first.value.to_bits(), fresh.value.to_bits());
        assert_eq!(first.samples, fresh.samples);
        // And `evaluate_f64` / exact `evaluate` agree with `estimate`
        // bit for bit: all three run the same sampler at stream 0.
        let mut c = sampling_engine(9, 0.1, 1e-3);
        let mut d = sampling_engine(9, 0.1, 1e-3);
        assert_eq!(
            c.evaluate_f64(&q, &tid).unwrap().to_bits(),
            first.value.to_bits()
        );
        assert_eq!(
            d.evaluate(&q, &tid).unwrap().to_f64().to_bits(),
            first.value.to_bits()
        );
    }
}

/// `count` probability scenarios alternating between two database
/// shapes — one within the brute-force budget, one beyond it — so a
/// single batch mixes exact brute force with Monte-Carlo sampling.
fn mixed_scenarios(count: usize, rng: &mut StdRng) -> Vec<Tid> {
    let easy = uniform_tid(complete_database(2, 1), half()); // 4 tuples
    let hard = uniform_tid(complete_database(2, 2), half()); // 12 tuples
    (0..count)
        .map(|i| {
            let mut tid = if i % 2 == 0 {
                hard.clone()
            } else {
                easy.clone()
            };
            let tuple = TupleId(rng.random_range(0..tid.len() as u32));
            let denom = rng.random_range(2..30u64);
            tid.set_prob(tuple, BigRational::from_ratio(1, denom))
                .unwrap();
            tid
        })
        .collect()
}

/// Sharding is a performance knob for sampled batches too: every shard
/// count `0..=16` returns the same bits as the sequential batch on a
/// mixed hard/easy workload, on both the exact and the f64 paths, and
/// the merged per-shard sample counters equal the sequential totals.
/// Worker-private RNG streams are derived from the *global* scenario
/// index, which is exactly what this pins down.
#[test]
fn sharded_sampling_is_bit_identical_for_every_shard_count() {
    let q = HQuery::new(BoolFn::from_fn(3, |v| v != 0));
    let mut rng = StdRng::seed_from_u64(2020);
    let scenarios = mixed_scenarios(13, &mut rng);

    let config = EngineConfig {
        max_brute_force_tuples: 4,
        sampling: Some(SamplingConfig::default()),
        ..EngineConfig::default()
    };
    let mut sequential = PqeEngine::with_config(config);
    let expected = sequential.evaluate_batch(&q, &scenarios).unwrap();
    let mut sequential_f64 = PqeEngine::with_config(config);
    let expected_f64 = sequential_f64.evaluate_batch_f64(&q, &scenarios).unwrap();
    assert!(sequential.stats().samples_drawn > 0);
    assert_eq!(sequential.stats().sample_plans, 7, "7 of 13 are hard");
    assert_eq!(sequential.stats().brute_force_plans, 6);
    assert_eq!(
        counters(sequential.stats()),
        counters(sequential_f64.stats()),
        "exact and f64 paths must sample identically"
    );

    for shards in 0..=16usize {
        let mut engine = PqeEngine::with_config(config);
        let got = engine
            .evaluate_batch_sharded(&q, &scenarios, shards)
            .unwrap();
        assert_eq!(got, expected, "shards={shards}");
        assert_eq!(counters(engine.stats()), counters(sequential.stats()));
        let batch = engine.stats().last_batch.unwrap();
        assert_eq!(batch.sampled, 7, "shards={shards}");

        let mut engine_f64 = PqeEngine::with_config(config);
        let got_f64 = engine_f64
            .evaluate_batch_sharded_f64(&q, &scenarios, shards)
            .unwrap();
        assert_eq!(got_f64, expected_f64, "shards={shards} (f64)");
        assert_eq!(counters(engine_f64.stats()), counters(sequential.stats()));
    }
}

/// `explain()` must say *why* sampling was chosen and *which* sampler
/// will run, for each of the three hard regions.
#[test]
fn explain_names_the_sampler_and_the_region_for_each_hard_region() {
    let cases: [(BoolFn, Region, &str, SamplerKind, &str); 3] = [
        (
            BoolFn::from_fn(3, |v| v != 0),
            Region::HardMonotone,
            "Corollary 3.9",
            SamplerKind::KarpLuby,
            "Karp-Luby",
        ),
        (
            BoolFn::from_sat(3, [0b001, 0b010, 0b000]),
            Region::HardByTransfer,
            "by transfer",
            SamplerKind::NaiveWorlds,
            "naive world",
        ),
        (
            max_euler_fn(4),
            Region::ConjecturedHard,
            "conjectured",
            SamplerKind::NaiveWorlds,
            "naive world",
        ),
    ];
    for (phi, region, region_needle, kind, kind_needle) in cases {
        assert_eq!(classify(&phi), region);
        let k = phi.k();
        let q = HQuery::new(phi);
        let tid = uniform_tid(complete_database(k, 2), half());
        let engine = sampling_engine(1, 0.1, 1e-3);
        assert_eq!(engine.plan(&q, &tid), Ok(Plan::Sample(kind)));
        let explained = engine.explain(&q, &tid).to_string();
        assert!(explained.contains(region_needle), "{explained}");
        assert!(explained.contains(kind_needle), "{explained}");
        assert!(explained.contains("sampling chosen"), "{explained}");
        assert!(explained.contains("brute-force budget"), "{explained}");
    }
}

/// Sampling is strictly opt-in: with `sampling: None` (the default) a
/// hard instance beyond the budget still refuses to guess.
#[test]
fn sampling_disabled_still_returns_intractable() {
    let q = HQuery::new(BoolFn::from_fn(3, |v| v != 0));
    let tid = uniform_tid(complete_database(2, 2), half());
    let mut engine = PqeEngine::with_config(EngineConfig {
        max_brute_force_tuples: 4,
        ..EngineConfig::default()
    });
    assert!(matches!(
        engine.evaluate(&q, &tid),
        Err(EngineError::Intractable { budget: 4, .. })
    ));
    assert!(matches!(
        engine.estimate(&q, &tid),
        Err(EngineError::Intractable { .. })
    ));
    let explained = engine.explain(&q, &tid).to_string();
    assert!(explained.contains("no sound plan"), "{explained}");
}

/// `plan_batch` dry runs report the compile/sample split of a mixed
/// workload without evaluating anything.
#[test]
fn plan_batch_reports_the_compile_sample_split() {
    let mut rng = StdRng::seed_from_u64(7);
    let scenarios = mixed_scenarios(10, &mut rng);
    let engine = sampling_engine(1, 0.1, 1e-3);

    // Hard φ: 5 sampled (beyond-budget shape), 5 brute-forced, nothing
    // compiled — Plan::Sample produces no cacheable artifact.
    let q = HQuery::new(BoolFn::from_fn(3, |v| v != 0));
    let bp = engine.plan_batch(&q, &scenarios, 4).unwrap();
    assert_eq!(bp.scenarios, 10);
    assert_eq!(bp.sampled, 5);
    assert_eq!((bp.compiles, bp.shared), (0, 0));
    assert!(bp.to_string().contains("5 sampled"), "{bp}");
    assert_eq!(engine.stats().queries, 0, "dry run must not evaluate");

    // Safe φ on the same scenarios: all compiled/shared, none sampled.
    let safe = HQuery::new(intext::boolfn::phi9());
    let tid = uniform_tid(complete_database(3, 2), half());
    let bp = engine
        .plan_batch(&safe, &[tid.clone(), tid.clone(), tid], 2)
        .unwrap();
    assert_eq!(bp.sampled, 0);
    assert_eq!((bp.compiles, bp.shared), (1, 2));
}
