//! The lane-batched evaluation kernel, end to end through the engine:
//!
//! * `evaluate_batch_f64` and `evaluate_batch_sharded_f64` are
//!   **bit-identical** to a per-scenario `evaluate_f64` loop for every
//!   Boolean function with `k ≤ 2` on randomized TIDs — both artifact
//!   kinds (OBDD and d-D), both fallback backends (extensional, brute
//!   force) included,
//! * ragged batch sizes (tails that do not fill a `LANES`-wide block)
//!   never change the bits, via a proptest sweep,
//! * the compile-vs-walk timing split and the lane-kernel invocation
//!   counter make the batching observable.
//!
//! The kernel's own unit tests (including the deep-chain recursion-safety
//! test and the counting-allocator zero-allocation test) live in
//! `crates/circuits`.

use intext::boolfn::BoolFn;
use intext::circuits::LANES;
use intext::engine::{EngineConfig, PqeEngine};
use intext::numeric::BigRational;
use intext::query::HQuery;
use intext::tid::{
    complete_database, random_database, random_tid, uniform_tid, DbGenConfig, Tid, TupleId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn half() -> BigRational {
    BigRational::from_ratio(1, 2)
}

/// `count` probability scenarios over one database shape: the base TID
/// with one random tuple re-weighted per scenario.
fn reweighted_scenarios(base: &Tid, count: usize, rng: &mut StdRng) -> Vec<Tid> {
    (0..count)
        .map(|_| {
            let mut tid = base.clone();
            let tuple = TupleId(rng.random_range(0..tid.len() as u32));
            let denom = rng.random_range(2..30u64);
            tid.set_prob(tuple, BigRational::from_ratio(1, denom))
                .unwrap();
            tid
        })
        .collect()
}

/// The counter halves of two `EngineStats` (wall-clock durations and the
/// path-specific kernel-call counter legitimately differ between runs).
fn counters(s: &intext::engine::EngineStats) -> [u64; 9] {
    [
        s.queries,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.obdd_plans,
        s.dd_plans,
        s.extensional_plans,
        s.brute_force_plans,
        s.extensional_memo_hits,
    ]
}

/// Lane-batched ≡ scalar loop, bit for bit, for **all** 272 Boolean
/// functions with `k ≤ 2` (16 at k = 1, 256 at k = 2) on randomized
/// TIDs — every backend flows through the batch paths: OBDD and d-D
/// artifacts through the kernel, brute force through the scalar
/// fallback.
#[test]
fn lane_batched_equals_scalar_loop_for_all_small_phi() {
    let mut rng = StdRng::seed_from_u64(2121);
    for k in 1..=2u8 {
        let db = random_database(
            &DbGenConfig {
                k,
                domain_size: 2,
                density: 0.75,
                prob_denominator: 6,
            },
            &mut rng,
        );
        let base = random_tid(db, 6, &mut rng);
        // LANES + 3 scenarios: at least one full block plus a ragged tail.
        let scenarios = reweighted_scenarios(&base, LANES + 3, &mut rng);
        let mut scalar = PqeEngine::new();
        let mut lane = PqeEngine::new();
        let mut sharded = PqeEngine::new();
        let n = k + 1;
        for table in 0..(1u64 << (1u32 << n)) {
            let phi = BoolFn::from_table_u64(n, table);
            let q = HQuery::new(phi);
            let expected: Vec<f64> = scenarios
                .iter()
                .map(|tid| scalar.evaluate_f64(&q, tid).unwrap())
                .collect();
            let batched = lane.evaluate_batch_f64(&q, &scenarios).unwrap();
            assert_eq!(batched, expected, "k={k}, table {table:#x} (sequential)");
            let fanned = sharded
                .evaluate_batch_sharded_f64(&q, &scenarios, 3)
                .unwrap();
            assert_eq!(fanned, expected, "k={k}, table {table:#x} (sharded)");
        }
        // Identical answers all along, so the lifetime counters of all
        // three engines must line up exactly.
        assert_eq!(counters(scalar.stats()), counters(lane.stats()), "k={k}");
        assert_eq!(counters(scalar.stats()), counters(sharded.stats()), "k={k}");
        // The sweeps exercised compiled artifacts through the kernel
        // (not just the scalar fallback), and the scalar engine never
        // touched it.
        assert_eq!(scalar.stats().lane_kernel_calls, 0, "k={k}");
        assert!(lane.stats().lane_kernel_calls > 0, "k={k}");
        assert!(sharded.stats().lane_kernel_calls > 0, "k={k}");
        assert!(lane.stats().brute_force_plans > 0, "k={k}");
        assert!(lane.stats().obdd_plans > 0, "k={k}");
        if k >= 2 {
            assert!(lane.stats().dd_plans > 0, "k={k}");
        }
    }
}

/// Under `prefer_extensional`, the batch paths reuse the memoized CNF
/// lattice and still agree bit-for-bit with the scalar loop — and all
/// three paths count the same number of memo hits.
#[test]
fn lane_batched_extensional_fallback_matches_loop_and_counts_memo_hits() {
    let mut rng = StdRng::seed_from_u64(909);
    let base = uniform_tid(complete_database(3, 2), half());
    let scenarios = reweighted_scenarios(&base, 7, &mut rng);
    let q = HQuery::new(intext::boolfn::phi9());
    let config = EngineConfig {
        prefer_extensional: true,
        ..EngineConfig::default()
    };

    let mut scalar = PqeEngine::with_config(config);
    let expected: Vec<f64> = scenarios
        .iter()
        .map(|tid| scalar.evaluate_f64(&q, tid).unwrap())
        .collect();
    let mut lane = PqeEngine::with_config(config);
    assert_eq!(lane.evaluate_batch_f64(&q, &scenarios).unwrap(), expected);
    let mut sharded = PqeEngine::with_config(config);
    assert_eq!(
        sharded
            .evaluate_batch_sharded_f64(&q, &scenarios, 2)
            .unwrap(),
        expected
    );
    assert_eq!(counters(scalar.stats()), counters(lane.stats()));
    assert_eq!(counters(scalar.stats()), counters(sharded.stats()));
    // 7 extensional evaluations per engine: one lattice build, 6 reuses.
    assert_eq!(scalar.stats().extensional_memo_hits, 6);
    assert_eq!(lane.stats().lane_kernel_calls, 0, "no artifact, no kernel");
}

/// The split timers and kernel counter expose the batching: compiling
/// happens once, walking dominates thereafter, and the number of kernel
/// invocations is exactly `ceil(scenarios / LANES)` per one-shape batch.
#[test]
fn timing_split_and_kernel_calls_are_observable() {
    let mut rng = StdRng::seed_from_u64(31);
    let base = uniform_tid(complete_database(3, 2), half());
    let scenarios = reweighted_scenarios(&base, 3 * LANES + 1, &mut rng);
    let q = HQuery::new(intext::boolfn::phi9());
    let mut engine = PqeEngine::new();
    engine.evaluate_batch_f64(&q, &scenarios).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.lane_kernel_calls, 4, "ceil(25 / 8) blocks");
    assert_eq!(stats.cache_misses, 1);
    assert!(stats.compile_nanos() > 0, "the one compile was timed");
    assert!(stats.walk_nanos > 0, "the walks were timed");
    assert_eq!(
        stats.compile_nanos(),
        u64::try_from(stats.compile_time.as_nanos()).unwrap(),
        "the nanos mirror the aggregate duration"
    );
    let shown = stats.to_string();
    assert!(shown.contains("lane-kernel"), "{shown}");
    assert!(shown.contains("memo hit"), "{shown}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ragged batches — any size from empty through several blocks, over
    /// both artifact kinds — stay bit-identical to the scalar loop and
    /// return one probability per scenario.
    #[test]
    fn ragged_batches_are_bit_identical(
        count in 0usize..(3 * LANES + 2),
        degenerate in any::<bool>(),
        seed in any::<u64>(),
        shards in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = uniform_tid(complete_database(3, 1), half());
        let scenarios = reweighted_scenarios(&base, count, &mut rng);
        // Degenerate φ compiles an OBDD artifact, φ9 a d-D circuit.
        let phi = if degenerate {
            BoolFn::var(4, 0)
        } else {
            intext::boolfn::phi9()
        };
        let q = HQuery::new(phi);
        let mut scalar = PqeEngine::new();
        let expected: Vec<f64> = scenarios
            .iter()
            .map(|tid| scalar.evaluate_f64(&q, tid).unwrap())
            .collect();
        let mut lane = PqeEngine::new();
        let batched = lane.evaluate_batch_f64(&q, &scenarios).unwrap();
        prop_assert_eq!(&batched, &expected);
        let mut fanned = PqeEngine::new();
        let sharded = fanned.evaluate_batch_sharded_f64(&q, &scenarios, shards).unwrap();
        prop_assert_eq!(&sharded, &expected);
        prop_assert_eq!(batched.len(), count);
        if count > 0 {
            let expected_calls = count.div_ceil(LANES) as u64;
            prop_assert_eq!(lane.stats().lane_kernel_calls, expected_calls);
        }
    }
}
