//! Shared constants for the integration-test harness, declared as
//! `mod common;` by each test binary that needs them (the standard
//! Cargo integration-test idiom) so one definition pins the statistical
//! corpus across files.
#![allow(dead_code)] // not every test binary uses every item

/// Base seed of the statistical corpora: run `r` of a seeded sweep uses
/// seed `BASE_SEED + r`, so every run is reproducible bit for bit.
pub const BASE_SEED: u64 = 0xD00D;

/// Seed-corpus size used when `INTEXT_TEST_SEEDS` is unset: large
/// enough for the binomial tolerances derived at each statistical test,
/// small enough that a local `cargo test` stays fast.
pub const DEFAULT_SEEDS: u64 = 50;

/// Number of independently seeded runs per statistical test: the
/// `INTEXT_TEST_SEEDS` environment variable when set to a positive
/// integer, [`DEFAULT_SEEDS`] otherwise (unparsable or zero values fall
/// back rather than fail — a misconfigured knob should never turn a
/// correctness suite red). CI exports `INTEXT_TEST_SEEDS=400` on the
/// statistical steps to keep the full corpus; see `DESIGN.md` §8.
pub fn seed_count() -> u64 {
    std::env::var("INTEXT_TEST_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&r| r > 0)
        .unwrap_or(DEFAULT_SEEDS)
}
