//! Routing and caching guarantees of the `PqeEngine` front door:
//!
//! * every Figure 1 region maps to a sound plan (or an explicit refusal),
//! * the engine's answer equals brute force for **all** `φ` with `k ≤ 2`
//!   on randomized small TIDs, across all four backends,
//! * cache hits return bit-identical `BigRational`s and never recompile.

use intext::boolfn::{max_euler_fn, phi9, phi_no_pm, threshold_fn, BoolFn};
use intext::core::{classify, Region};
use intext::engine::{EngineConfig, EngineError, Plan, PqeEngine};
use intext::numeric::BigRational;
use intext::query::{pqe_brute_force, HQuery};
use intext::tid::{
    complete_database, random_database, random_tid, uniform_tid, DbGenConfig, TupleId,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn half() -> BigRational {
    BigRational::from_ratio(1, 2)
}

/// (a) Exhaustive at `k = 2`: every region maps to the plan the routing
/// table promises, and the mapping is total on small instances.
#[test]
fn every_region_maps_to_a_sound_plan() {
    let engine = PqeEngine::new();
    // complete_database(2, 2) has 12 tuples, within the default budget.
    let tid = uniform_tid(complete_database(2, 2), half());
    for table in 0..256u64 {
        let phi = BoolFn::from_table_u64(3, table);
        let region = classify(&phi);
        let plan = engine.plan(HQuery::new(phi), &tid);
        let expected = match region {
            Region::DegenerateObdd => Plan::Obdd,
            Region::ZeroEulerDD => Plan::DdCircuit,
            Region::HardMonotone | Region::HardByTransfer | Region::ConjecturedHard => {
                Plan::BruteForce
            }
            // classify() is defined on φ; the general-query regions
            // never come out of it.
            Region::SafeLifted | Region::GroundCircuit => {
                unreachable!("classify is H-only")
            }
        };
        assert_eq!(plan, Ok(expected), "table {table:#x} in {region:?}");
    }
}

/// (a) continued: named functions at `k = 3` land where Figure 1 says,
/// and the hard ones are refused once the instance outgrows the budget.
#[test]
fn named_functions_route_per_figure_1() {
    let engine = PqeEngine::new();
    let small = uniform_tid(complete_database(3, 1), half());
    let cases = [
        (BoolFn::var(4, 0), Plan::Obdd),        // degenerate h_{3,0}
        (threshold_fn(4, 0), Plan::Obdd),       // ⊤ is degenerate
        (phi9(), Plan::DdCircuit),              // safe, e = 0
        (threshold_fn(4, 1), Plan::BruteForce), // hard monotone
        (max_euler_fn(4), Plan::BruteForce),    // conjectured hard
    ];
    for (phi, expected) in cases {
        assert_eq!(
            engine.plan(HQuery::new(phi.clone()), &small),
            Ok(expected),
            "{phi:?}"
        );
    }
    // phi_no_pm is the paper's non-monotone zero-Euler witness at k = 4.
    let small4 = uniform_tid(complete_database(4, 1), half());
    assert_eq!(
        engine.plan(HQuery::new(phi_no_pm()), &small4),
        Ok(Plan::DdCircuit)
    );
    // Beyond the brute-force budget, hard queries are refused loudly.
    let big = uniform_tid(complete_database(3, 4), half());
    match engine.plan(HQuery::new(max_euler_fn(4)), &big) {
        Err(EngineError::Intractable { region, tuples, .. }) => {
            assert_eq!(region, Region::ConjecturedHard);
            assert_eq!(tuples, big.len());
        }
        other => panic!("expected Intractable, got {other:?}"),
    }
}

/// The fourth backend: `prefer_extensional` sends monotone safe
/// nondegenerate queries through lifted inference, leaving degenerate
/// ones on the (cheaper, cacheable) OBDD route.
#[test]
fn prefer_extensional_covers_the_fourth_backend() {
    let mut engine = PqeEngine::with_config(EngineConfig {
        prefer_extensional: true,
        ..EngineConfig::default()
    });
    let tid = uniform_tid(complete_database(3, 1), half());
    let q9 = HQuery::new(phi9());
    assert_eq!(engine.plan(&q9, &tid), Ok(Plan::Extensional));
    // Non-monotone zero-Euler functions cannot go extensional.
    let tid4 = uniform_tid(complete_database(4, 1), half());
    let qpm = HQuery::new(phi_no_pm());
    assert_eq!(engine.plan(&qpm, &tid4), Ok(Plan::DdCircuit));
    // Degenerate stays OBDD even with the preference on.
    let qdeg = HQuery::new(BoolFn::var(4, 0));
    assert_eq!(engine.plan(&qdeg, &tid), Ok(Plan::Obdd));
    // And the extensional result matches ground truth.
    let p = engine.evaluate(&q9, &tid).unwrap();
    assert_eq!(p, pqe_brute_force(&q9, &tid).unwrap());
    assert_eq!(engine.stats().extensional_plans, 1);
}

/// (b) The engine equals brute force for **every** Boolean function with
/// `k ≤ 2` on randomized small TIDs — the planner may pick any backend,
/// the answer must not depend on it.
#[test]
fn engine_matches_brute_force_for_all_small_phi() {
    let mut rng = StdRng::seed_from_u64(2020);
    for k in 1..=2u8 {
        let db = random_database(
            &DbGenConfig {
                k,
                domain_size: 2,
                density: 0.75,
                prob_denominator: 6,
            },
            &mut rng,
        );
        let tid = random_tid(db, 6, &mut rng);
        let mut engine = PqeEngine::new();
        let n = k + 1;
        for table in 0..(1u64 << (1u32 << n)) {
            let phi = BoolFn::from_table_u64(n, table);
            let q = HQuery::new(phi);
            let via_engine = engine.evaluate(&q, &tid).unwrap();
            let via_brute = pqe_brute_force(&q, &tid).unwrap();
            assert_eq!(via_engine, via_brute, "k={k}, table {table:#x}");
        }
        // Sanity: the sweep exercised compiled plans, not just brute force.
        // (At k = 1 every zero-Euler function is degenerate, so the d-D
        // region is only populated from k = 2 on.)
        assert!(engine.stats().obdd_plans > 0, "k={k}");
        assert!(engine.stats().brute_force_plans > 0, "k={k}");
        if k >= 2 {
            assert!(engine.stats().dd_plans > 0, "k={k}");
        }
    }
}

/// (b) continued, for the fourth backend: under `prefer_extensional`,
/// every *safe monotone* function with `k ≤ 3` goes through lifted
/// inference (nondegenerate ones) or the OBDD (degenerate ones), and
/// still equals brute force — so a classify/safety divergence would
/// surface here rather than as a panic in production.
#[test]
fn extensional_backend_matches_brute_force_for_all_monotone_small_phi() {
    let mut rng = StdRng::seed_from_u64(4040);
    for k in 1..=3u8 {
        let db = random_database(
            &DbGenConfig {
                k,
                domain_size: 2,
                density: 0.75,
                prob_denominator: 5,
            },
            &mut rng,
        );
        let tid = random_tid(db, 5, &mut rng);
        let mut engine = PqeEngine::with_config(EngineConfig {
            prefer_extensional: true,
            ..EngineConfig::default()
        });
        let n = k + 1;
        for table in intext::boolfn::enumerate::monotone_tables(n) {
            let phi = BoolFn::from_table_u64(n, table);
            if phi.euler_characteristic() != 0 {
                continue; // hard monotone: not extensional-eligible
            }
            let q = HQuery::new(phi);
            let via_engine = engine.evaluate(&q, &tid).unwrap();
            let via_brute = pqe_brute_force(&q, &tid).unwrap();
            assert_eq!(via_engine, via_brute, "k={k}, table {table:#x}");
        }
        // Every safe monotone function at k ≤ 2 is degenerate (φ9 at
        // k = 3 is the first needing Möbius), so lifted inference only
        // fires from k = 3 on.
        if k >= 3 {
            assert!(engine.stats().extensional_plans > 0, "k={k}");
        }
    }
}

/// (c) Cache hits return bit-identical `BigRational`s, and re-weighted
/// evaluations reuse the artifact without recompiling.
#[test]
fn cache_hits_are_bit_identical_and_never_recompile() {
    let mut engine = PqeEngine::new();
    let q = HQuery::new(phi9());
    let mut tid = uniform_tid(complete_database(3, 2), BigRational::from_ratio(3, 7));

    let cold = engine.evaluate(&q, &tid).unwrap();
    assert_eq!(engine.stats().cache_misses, 1);
    let warm = engine.evaluate(&q, &tid).unwrap();
    assert_eq!(engine.stats().cache_hits, 1);
    assert_eq!(cold, warm, "hit must be bit-identical to the miss");

    // Re-weight every tuple: still one artifact, zero recompilations.
    for (i, _) in tid.database().clone().iter() {
        tid.set_prob(i, BigRational::from_ratio(1 + i64::from(i.0), 100))
            .unwrap();
    }
    let reweighted = engine.evaluate(&q, &tid).unwrap();
    assert_eq!(engine.stats().cache_misses, 1, "no recompilation");
    assert_eq!(engine.stats().cache_hits, 2);
    assert_eq!(engine.cache_len(), 1);
    assert_eq!(reweighted, pqe_brute_force(&q, &tid).unwrap());
    // Evaluating the same scenario again reproduces it bit-for-bit.
    assert_eq!(reweighted, engine.evaluate(&q, &tid).unwrap());
}

/// `evaluate_batch` amortizes one compilation across a workload of
/// probability scenarios on the same database shape.
#[test]
fn batch_evaluation_amortizes_compilation() {
    let mut engine = PqeEngine::new();
    let q = HQuery::new(phi9());
    let base = uniform_tid(complete_database(3, 2), half());
    let scenarios: Vec<_> = (0..5u32)
        .map(|s| {
            let mut tid = base.clone();
            tid.set_prob(TupleId(s), BigRational::from_ratio(1, u64::from(s) + 3))
                .unwrap();
            tid
        })
        .collect();
    let probs = engine.evaluate_batch(&q, &scenarios).unwrap();
    assert_eq!(probs.len(), 5);
    assert_eq!(engine.stats().cache_misses, 1, "one compile for the batch");
    assert_eq!(engine.stats().cache_hits, 4);
    for (p, tid) in probs.iter().zip(&scenarios) {
        assert_eq!(p, &pqe_brute_force(&q, tid).unwrap());
    }
}

/// `explain` narrates the decision and tracks cache state transitions.
#[test]
fn explain_is_inspectable() {
    let mut engine = PqeEngine::new();
    let q = HQuery::new(phi9());
    let tid = uniform_tid(complete_database(3, 1), half());

    let cold = engine.explain(&q, &tid);
    assert_eq!(cold.region, Region::ZeroEulerDD);
    assert_eq!(cold.plan, Ok(Plan::DdCircuit));
    assert!(!cold.cached);
    assert!(cold.to_string().contains("d-D pipeline"), "{cold}");

    engine.evaluate(&q, &tid).unwrap();
    let warm = engine.explain(&q, &tid);
    assert!(warm.cached);
    assert!(warm.to_string().contains("cached"), "{warm}");

    // Refusals are narrated too.
    let big = uniform_tid(complete_database(3, 4), half());
    let refused = engine.explain(HQuery::new(max_euler_fn(4)), &big);
    assert!(refused.plan.is_err());
    assert!(refused.to_string().contains("no sound plan"), "{refused}");
}
