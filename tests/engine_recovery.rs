//! Crash-safety differential harness for the durability layer
//! (`DESIGN.md` §12): WAL'd deltas, atomic snapshot rotation, and
//! [`PqeEngine::recover`].
//!
//! The durability claim is the strongest one the engine makes: after a
//! crash at **any** write boundary of a WAL + checkpoint workload,
//! recovery rebuilds an engine whose answers — exact rationals *and*
//! f64 bits — and whose serialized artifacts are byte-identical to an
//! engine that never crashed. The harness proves it by enumeration, not
//! by luck:
//!
//! 1. a workload of random live updates runs fault-free over an
//!    in-memory filesystem behind a [`FaultIo`] counter, which yields
//!    the exact number of storage operations it performs;
//! 2. the same workload then re-runs once per operation index with a
//!    deterministic crash injected there (optionally leaving a torn
//!    prefix of the fatal write), and every interrupted history is
//!    recovered and compared against the uncrashed reference for **all**
//!    272 Boolean functions with `k ≤ 2`;
//! 3. corruption matrices mutate every field of a WAL record frame and
//!    of a delta blob, pinning the specific typed error each mutation
//!    produces — recovery and `apply_delta` are total, never a panic;
//! 4. a proptest flips random bytes across the whole durable directory
//!    and asserts recovery always ends in a working engine plus a clean
//!    quarantine report, and that a second recovery finds nothing left
//!    to repair.
//!
//! [`PqeEngine::recover`]: intext_engine::PqeEngine::recover
//! [`FaultIo`]: intext_engine::fsio::FaultIo

mod common;

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use intext_boolfn::BoolFn;
use intext_engine::fsio::{FaultIo, FaultPlan, MemFs, StorageIo};
use intext_engine::wal::{Wal, WalCorruption, RECORD_HEADER_LEN};
use intext_engine::{
    DurableDir, EngineConfig, PqeEngine, SnapshotSource, StoreError, TupleUpdate, MAGIC,
    SNAPSHOT_FILE, SNAPSHOT_PREV_FILE, SNAPSHOT_TMP_FILE, WAL_FILE,
};
use intext_numeric::BigRational;
use intext_query::HQuery;
use intext_tid::{uniform_tid, Database, Tid, TupleDesc, TupleId};
use proptest::prelude::*;

/// Domain size of every instance in the harness.
const DOMAIN: u32 = 2;

/// Instance size cap, as in `tests/engine_incremental.rs`: at most
/// `2^7` possible worlds keeps the exact sweeps over all 272 functions
/// fast while exercising every slot shape.
const TUPLE_CAP: usize = 7;

/// Live updates per workload. With the checkpoint cadence below this
/// yields histories that crash before the first commit, between
/// commits, and inside the WAL tail after the last commit.
const STEPS: usize = 5;

/// Storage operations consumed by `DurableDir::open_with` plus the
/// first `checkpoint` (no previous generation yet): `create_dir_all`,
/// snapshot write + sync, rename into place, directory sync, WAL
/// truncate write + sync. A crash at any later operation happens after
/// a snapshot has committed, so recovery must never cold-start.
const FIRST_COMMIT_OPS: u64 = 7;

/// SplitMix64, the same generator the other differential harnesses use:
/// the whole history of a case derives from one `u64`.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rational(state: &mut u64) -> BigRational {
    let den = 1 + mix(state) % 6;
    let num = mix(state) % (den + 1);
    BigRational::from_ratio(num as i64, den)
}

fn half() -> BigRational {
    BigRational::from_ratio(1, 2)
}

/// Every tuple the vocabulary `(k, domain)` admits.
fn universe(k: u8, domain: u32) -> Vec<TupleDesc> {
    let mut all = Vec::new();
    for a in 0..domain {
        all.push(TupleDesc::R(a));
    }
    for i in 1..=k {
        for a in 0..domain {
            for b in 0..domain {
                all.push(TupleDesc::S(i, a, b));
            }
        }
    }
    for b in 0..domain {
        all.push(TupleDesc::T(b));
    }
    all
}

fn random_tid(state: &mut u64, k: u8, domain: u32, cap: usize) -> Tid {
    let mut tid = Tid::new(Database::new(k, domain), Vec::new()).unwrap();
    let all = universe(k, domain);
    for &t in &all {
        if tid.len() < cap && mix(state).is_multiple_of(2) {
            let p = rational(state);
            tid.insert(t, p).unwrap();
        }
    }
    if tid.is_empty() {
        let p = rational(state);
        tid.insert(all[0], p).unwrap();
    }
    tid
}

/// One live update of the workload stream.
enum Op {
    Insert(TupleDesc, BigRational),
    Remove(TupleId),
    Reweight(TupleId, BigRational),
}

fn random_op(state: &mut u64, tid: &Tid, all: &[TupleDesc], cap: usize) -> Op {
    let present: Vec<TupleId> = tid.database().iter().map(|(id, _)| id).collect();
    let absent: Vec<TupleDesc> = all
        .iter()
        .copied()
        .filter(|t| !tid.database().iter().any(|(_, have)| have == *t))
        .collect();
    let can_insert = !absent.is_empty() && tid.len() < cap;
    let roll = mix(state) % 4;
    if present.is_empty() || (can_insert && roll < 2) {
        let t = absent[(mix(state) as usize) % absent.len()];
        let p = rational(state);
        Op::Insert(t, p)
    } else if roll == 2 {
        Op::Remove(present[(mix(state) as usize) % present.len()])
    } else {
        let id = present[(mix(state) as usize) % present.len()];
        let p = rational(state);
        Op::Reweight(id, p)
    }
}

fn apply_op(engine: &mut PqeEngine, tid: &mut Tid, op: &Op) {
    match op {
        Op::Insert(desc, p) => {
            engine.insert_tuple(tid, *desc, p.clone()).unwrap();
        }
        Op::Remove(id) => {
            engine.remove_tuple(tid, *id).unwrap();
        }
        Op::Reweight(id, p) => {
            engine.set_probability(tid, *id, p.clone()).unwrap();
        }
    }
}

/// All `2^(2^(k+1))` Boolean functions on `k + 1` variables.
fn all_functions(k: u8) -> Vec<BoolFn> {
    let tables: u64 = 1 << (1u64 << (k + 1));
    (0..tables)
        .map(|t| BoolFn::from_table_u64(k + 1, t))
        .collect()
}

/// The first three cacheable-region functions for chain length `k` —
/// the φs whose artifacts the workload keeps durable. Determined by
/// probing (evaluate, then ask for the artifact): exactly the OBDD and
/// d-D regions cache, and only cached artifacts can export deltas.
fn durable_fns(k: u8) -> Vec<BoolFn> {
    let mut probe = PqeEngine::new();
    let mut state = 0x5EED ^ u64::from(k);
    let tid = random_tid(&mut state, k, DOMAIN, 5);
    let mut out = Vec::new();
    for phi in all_functions(k) {
        let q = HQuery::new(phi.clone());
        probe.evaluate(&q, &tid).unwrap();
        if probe.export_artifact(&q, tid.database()).is_ok() {
            out.push(phi);
            if out.len() == 3 {
                break;
            }
        }
    }
    assert!(out.len() >= 2, "k={k}: too few cacheable functions");
    out
}

/// Ensures every durable φ has a cached artifact for `tid`'s current
/// shape, so the next `export_delta` against that shape succeeds.
fn warm(engine: &mut PqeEngine, tid: &Tid, durable: &[BoolFn]) {
    for phi in durable {
        engine.evaluate(HQuery::new(phi.clone()), tid).unwrap();
    }
}

/// The durable workload, identical in every run of one seed: build a
/// random instance, warm and checkpoint, then stream random updates —
/// each structural update WAL-logged (one delta per durable φ, appended
/// and fsynced **before** the in-memory apply) with a mid-stream
/// checkpoint. Returns the uncrashed engine, the final instance, and
/// the timeline of shapes the instance moved through; any injected
/// storage fault surfaces as the `Err` a real process would die on.
fn drive(
    io: Arc<dyn StorageIo>,
    seed: u64,
    k: u8,
    durable: &[BoolFn],
) -> io::Result<(PqeEngine, Tid, Vec<Database>)> {
    let dir = DurableDir::open_with("engine", io)?;
    let mut state = seed ^ u64::from(k);
    let all = universe(k, DOMAIN);
    let mut tid = random_tid(&mut state, k, DOMAIN, TUPLE_CAP);
    let mut engine = PqeEngine::new();
    let mut shapes = vec![tid.database().clone()];
    warm(&mut engine, &tid, durable);
    dir.checkpoint(&engine)?;
    for step in 0..STEPS {
        let op = random_op(&mut state, &tid, &all, TUPLE_CAP);
        let update = match &op {
            Op::Insert(desc, _) => Some(TupleUpdate::Insert { desc: *desc }),
            Op::Remove(id) => Some(TupleUpdate::Remove { id: id.0 }),
            // Probabilities are not part of any artifact, so a reweight
            // has no structural delta to make durable.
            Op::Reweight(..) => None,
        };
        if let Some(update) = update {
            warm(&mut engine, &tid, durable);
            for phi in durable {
                let delta = engine
                    .export_delta(&HQuery::new(phi.clone()), tid.database(), &update)
                    .expect("durable φ is cached for the pre-update shape");
                dir.log_delta(&delta)?;
            }
        }
        apply_op(&mut engine, &mut tid, &op);
        shapes.push(tid.database().clone());
        if step % 3 == 2 {
            dir.checkpoint(&engine)?;
        }
    }
    Ok((engine, tid, shapes))
}

/// Per-function reference record: exact answer, f64 bits, and the
/// serialized artifact for the final shape (`None` for uncacheable φ).
type Reference = Vec<(BigRational, u64, Option<Vec<u8>>)>;

fn reference_table(engine: &mut PqeEngine, tid: &Tid, fns: &[BoolFn]) -> Reference {
    fns.iter()
        .map(|phi| {
            let q = HQuery::new(phi.clone());
            let exact = engine.evaluate(&q, tid).unwrap();
            let bits = engine.evaluate_f64(&q, tid).unwrap().to_bits();
            let artifact = engine.export_artifact(&q, tid.database()).ok();
            (exact, bits, artifact)
        })
        .collect()
}

/// A fresh compile of `phi` over `shape`, serialized — the byte-level
/// ground truth any recovered artifact for that key must equal.
fn fresh_artifact(phi: &BoolFn, shape: &Database) -> Vec<u8> {
    let q = HQuery::new(phi.clone());
    let tid = uniform_tid(shape.clone(), half());
    let mut engine = PqeEngine::new();
    engine.evaluate(&q, &tid).unwrap();
    engine.export_artifact(&q, shape).unwrap()
}

/// A clean recovery handle over the surviving bytes — the "new process"
/// after the faulted one died.
fn reopen(mem: &Arc<MemFs>) -> DurableDir {
    DurableDir::open_with("engine", Arc::clone(mem) as Arc<dyn StorageIo>).unwrap()
}

/// The internal-consistency checks every recovery must pass, whatever
/// the damage: the report's counters mirror the engine's stats, and
/// every quarantined file still holds — at its new name — exactly the
/// bytes it had before recovery touched it (corruption is preserved as
/// evidence, never deleted).
fn assert_report_consistent(
    engine: &PqeEngine,
    report: &intext_engine::RecoveryReport,
    before: &HashMap<PathBuf, Vec<u8>>,
    mem: &MemFs,
    context: &str,
) {
    assert_eq!(
        engine.stats().wal_records_applied,
        report.wal_records_applied,
        "{context}: stats must mirror the report's replay count"
    );
    assert_eq!(
        engine.stats().recovery_quarantines,
        report.quarantined.len() as u64,
        "{context}: stats must mirror the report's quarantine count"
    );
    for q in &report.quarantined {
        let original = before.get(&q.original).unwrap_or_else(|| {
            panic!(
                "{context}: quarantined {} never existed",
                q.original.display()
            )
        });
        assert_eq!(
            &mem.read(&q.moved_to).unwrap(),
            original,
            "{context}: quarantine must preserve the corrupt bytes verbatim"
        );
        assert!(
            !q.reason.is_empty(),
            "{context}: quarantine carries its reason"
        );
    }
}

/// How many seeds the crash-point sweeps run: one locally, two when CI
/// asks for the deep statistical corpus (`INTEXT_TEST_SEEDS`).
fn sweep_seeds() -> u64 {
    if common::seed_count() > common::DEFAULT_SEEDS {
        2
    } else {
        1
    }
}

/// The tentpole differential: enumerate **every** storage operation of
/// the workload as a crash point (with a rotating torn-write prefix),
/// recover each interrupted history through a clean handle, and demand
/// byte-identity with the uncrashed reference — exact rationals, f64
/// bits, and serialized artifacts for all 272 `k ≤ 2` functions, plus
/// fresh-compile byte-identity for whatever artifacts the recovered
/// cache holds before answering anything.
#[test]
fn crash_at_every_write_boundary_recovers_byte_identically() {
    for round in 0..sweep_seeds() {
        for k in 1u8..=2 {
            let seed = common::BASE_SEED ^ (round << 48) ^ (u64::from(k) << 32);
            let durable = durable_fns(k);
            let fns = all_functions(k);

            // Fault-free run: the reference engine and the op count that
            // enumerates every crash point of this workload.
            let ref_mem = Arc::new(MemFs::new());
            let counter = Arc::new(FaultIo::new(
                Arc::clone(&ref_mem) as Arc<dyn StorageIo>,
                FaultPlan::default(),
            ));
            let (mut reference, tid, shapes) = drive(
                Arc::clone(&counter) as Arc<dyn StorageIo>,
                seed,
                k,
                &durable,
            )
            .expect("fault-free run");
            let total_ops = counter.ops();
            assert!(
                total_ops > FIRST_COMMIT_OPS,
                "k={k}: the workload must write past its first commit"
            );
            let table = reference_table(&mut reference, &tid, &fns);

            // Fresh-compile bytes per (durable φ, timeline shape), built on
            // demand — the ground truth for recovered cache contents.
            let mut fresh: HashMap<(u64, usize), Vec<u8>> = HashMap::new();

            for crash_at in 0..total_ops {
                let context = format!("k={k} round={round} crash at op {crash_at}");
                let mem = Arc::new(MemFs::new());
                let plan = FaultPlan {
                    crash_at_op: Some(crash_at),
                    torn_bytes: (crash_at % 5) as usize,
                    ..FaultPlan::default()
                };
                let faulted = Arc::new(FaultIo::new(Arc::clone(&mem) as Arc<dyn StorageIo>, plan));
                let crashed = drive(faulted as Arc<dyn StorageIo>, seed, k, &durable);
                assert!(crashed.is_err(), "{context}: the workload must die");

                let dir = reopen(&mem);
                let before = mem.files();
                let (mut recovered, report) =
                    PqeEngine::recover_with(EngineConfig::default(), &dir)
                        .unwrap_or_else(|e| panic!("{context}: recovery must not error: {e}"));
                assert_report_consistent(&recovered, &report, &before, &mem, &context);
                if crash_at >= FIRST_COMMIT_OPS {
                    assert!(
                        !matches!(report.snapshot, SnapshotSource::Cold),
                        "{context}: a committed snapshot must never be lost"
                    );
                }

                // Whatever the recovered cache holds for a durable φ at any
                // shape the instance moved through must be byte-identical
                // to a fresh compile of that (φ, shape) — snapshots and
                // replayed deltas can lag the crash, never corrupt.
                for phi in &durable {
                    let q = HQuery::new(phi.clone());
                    for (si, shape) in shapes.iter().enumerate() {
                        if let Ok(bytes) = recovered.export_artifact(&q, shape) {
                            let want = fresh
                                .entry((phi.table_u64(), si))
                                .or_insert_with(|| fresh_artifact(phi, shape));
                            assert_eq!(
                                &bytes,
                                want,
                                "{context}: recovered artifact for φ {:#x} at shape {si} \
                                 differs from a fresh compile",
                                phi.table_u64()
                            );
                        }
                    }
                }

                // The full differential on the final instance: every
                // function answers and serializes exactly like the engine
                // that never crashed.
                for (phi, (exact, bits, artifact)) in fns.iter().zip(&table) {
                    let q = HQuery::new(phi.clone());
                    assert_eq!(
                        &recovered.evaluate(&q, &tid).unwrap(),
                        exact,
                        "{context}: exact answer for φ {:#x}",
                        phi.table_u64()
                    );
                    assert_eq!(
                        recovered.evaluate_f64(&q, &tid).unwrap().to_bits(),
                        *bits,
                        "{context}: f64 bits for φ {:#x}",
                        phi.table_u64()
                    );
                    assert_eq!(
                        &recovered.export_artifact(&q, tid.database()).ok(),
                        artifact,
                        "{context}: final artifact bytes for φ {:#x}",
                        phi.table_u64()
                    );
                }
            }
        }
    }
}

/// Failed fsyncs are the "disk said no but the process lives" case:
/// they must surface as errors at the call site (the workload stops,
/// exactly like a caller honoring the durability contract), leave no
/// torn bytes behind, and recovery from the resulting directory is
/// exact. Operations that are not syncs are unaffected and the run
/// completes identically to the reference.
#[test]
fn failed_fsyncs_surface_as_errors_and_recovery_stays_exact() {
    let k = 1u8;
    let seed = common::BASE_SEED ^ 0xF5;
    let durable = durable_fns(k);
    let fns = all_functions(k);

    let ref_mem = Arc::new(MemFs::new());
    let counter = Arc::new(FaultIo::new(
        Arc::clone(&ref_mem) as Arc<dyn StorageIo>,
        FaultPlan::default(),
    ));
    let (mut reference, tid, _) = drive(
        Arc::clone(&counter) as Arc<dyn StorageIo>,
        seed,
        k,
        &durable,
    )
    .expect("fault-free");
    let total_ops = counter.ops();
    let table = reference_table(&mut reference, &tid, &fns);

    let mut syncs_hit = 0u32;
    for op in 0..total_ops {
        let mem = Arc::new(MemFs::new());
        let plan = FaultPlan {
            fail_sync_at: vec![op],
            ..FaultPlan::default()
        };
        let faulted = Arc::new(FaultIo::new(Arc::clone(&mem) as Arc<dyn StorageIo>, plan));
        let run = drive(faulted as Arc<dyn StorageIo>, seed, k, &durable);
        let mut engine = match run {
            // Operation `op` was not a sync: the injection never fired
            // and the run must be indistinguishable from the reference.
            Ok((engine, final_tid, _)) => {
                assert_eq!(
                    final_tid.database().len(),
                    tid.database().len(),
                    "op {op}: a non-sync injection must not change the history"
                );
                engine
            }
            // Operation `op` was a sync: the error stopped the workload
            // with the durable state fully intact (no torn bytes — the
            // write part of every protocol step had already landed), so
            // recovery must be clean and exact.
            Err(_) => {
                syncs_hit += 1;
                let dir = reopen(&mem);
                let before = mem.files();
                let (recovered, report) =
                    PqeEngine::recover_with(EngineConfig::default(), &dir).unwrap();
                assert!(
                    report.quarantined.is_empty() && report.wal_cut.is_none(),
                    "op {op}: a failed fsync tears nothing, so nothing is quarantined"
                );
                assert_report_consistent(&recovered, &report, &before, &mem, &format!("op {op}"));
                recovered
            }
        };
        for (phi, (exact, bits, _)) in fns.iter().zip(&table) {
            let q = HQuery::new(phi.clone());
            assert_eq!(&engine.evaluate(&q, &tid).unwrap(), exact, "op {op}: exact");
            assert_eq!(
                engine.evaluate_f64(&q, &tid).unwrap().to_bits(),
                *bits,
                "op {op}: f64 bits"
            );
        }
    }
    assert!(syncs_hit >= 4, "the workload must contain fsync boundaries");
}

// ---------------------------------------------------------------------
// Corruption matrices
// ---------------------------------------------------------------------

/// FNV-1a 64, reimplemented independently of the store so the matrix
/// can re-seal blobs it has mutated (same published constants).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Applies `mutate` to a copy of `blob` and rewrites the trailing store
/// checksum so the mutation survives the integrity check — how the
/// matrix reaches the typed errors *behind* `ChecksumMismatch`.
fn resealed(blob: &[u8], mutate: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut bytes = blob.to_vec();
    mutate(&mut bytes);
    let n = bytes.len();
    let checksum = fnv1a64(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

/// The fixed delta-blob fixture of the corruption matrix: shape
/// `{R(0), T(1)}` at `k = 1`, `domain = 2`, shipping `Insert R(1)`.
/// Returns the warm engine, its instance, the first durable φ, and the
/// exported blob, whose layout the offsets below index into.
fn delta_fixture() -> (PqeEngine, Tid, BoolFn, Vec<u8>) {
    let mut tid = Tid::new(Database::new(1, DOMAIN), Vec::new()).unwrap();
    tid.insert(TupleDesc::R(0), half()).unwrap();
    tid.insert(TupleDesc::T(1), half()).unwrap();
    let phi = durable_fns(1).remove(0);
    let mut engine = PqeEngine::new();
    engine.evaluate(HQuery::new(phi.clone()), &tid).unwrap();
    let delta = engine
        .export_delta(
            &HQuery::new(phi.clone()),
            tid.database(),
            &TupleUpdate::Insert {
                desc: TupleDesc::R(1),
            },
        )
        .unwrap();
    (engine, tid, phi, delta)
}

// Byte offsets inside the fixture blob (store format, `DESIGN.md` §5):
// magic 0..8, version 8..10, kind 10, φ var count 11, φ table word
// 12..20, k 20, domain 21..25, tuple count 25..29, R(0) 29..34,
// T(1) 34..39, op tag 39, then the op body and the trailing checksum.
const OFF_KIND: usize = 10;
const OFF_VARS: usize = 11;
const OFF_WORD: usize = 12;
const OFF_K: usize = 20;
const OFF_DOMAIN: usize = 21;
const OFF_COUNT: usize = 25;
const OFF_TUPLE_0: usize = 29;
const OFF_TUPLE_1: usize = 34;
const OFF_OP: usize = 39;

/// Every field of a delta blob mutated, one at a time, each yielding
/// its specific typed [`StoreError`] — and `apply_delta` leaving the
/// engine bit-for-bit unaffected by every rejection.
#[test]
fn delta_corruption_matrix_is_typed_and_total() {
    let (mut engine, tid, phi, delta) = delta_fixture();
    assert_eq!(delta[..8], MAGIC, "fixture layout: magic");
    assert_eq!(delta.len(), OFF_OP + 1 + 5 + 8, "fixture layout: length");
    let loads_before = engine.stats().artifact_loads;
    let cache_before = engine.cache_len();

    // Header fields are checked before the checksum, so these need no
    // re-seal.
    let mut bad_magic = delta.clone();
    bad_magic[0] ^= 1;
    assert_eq!(engine.apply_delta(&bad_magic), Err(StoreError::BadMagic));
    let mut bad_version = delta.clone();
    bad_version[8] = 99;
    bad_version[9] = 0;
    assert_eq!(
        engine.apply_delta(&bad_version),
        Err(StoreError::UnsupportedVersion(99))
    );
    assert_eq!(engine.apply_delta(&delta[..10]), Err(StoreError::Truncated));

    // Behind the checksum: every inner field, re-sealed so the mutation
    // reaches its own validator.
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, Vec<u8>, Box<dyn Fn(&StoreError) -> bool>)> = vec![
        (
            "kind = artifact",
            resealed(&delta, |b| b[OFF_KIND] = 0),
            Box::new(|e| {
                matches!(e, StoreError::WrongContainer { expected, got }
                    if *expected == "update delta" && *got == "artifact")
            }),
        ),
        (
            "kind = bundle",
            resealed(&delta, |b| b[OFF_KIND] = 2),
            Box::new(|e| {
                matches!(e, StoreError::WrongContainer { expected, got }
                    if *expected == "update delta" && *got == "cache bundle")
            }),
        ),
        (
            "kind = 9",
            resealed(&delta, |b| b[OFF_KIND] = 9),
            Box::new(|e| matches!(e, StoreError::BadKind(9))),
        ),
        (
            "φ with zero variables",
            resealed(&delta, |b| b[OFF_VARS] = 0),
            Box::new(|e| matches!(e, StoreError::BadPhi)),
        ),
        (
            "φ table with stray bits",
            resealed(&delta, |b| {
                b[OFF_WORD..OFF_WORD + 8].copy_from_slice(&u64::MAX.to_le_bytes())
            }),
            Box::new(|e| matches!(e, StoreError::BadPhi)),
        ),
        (
            "chain length zero",
            resealed(&delta, |b| b[OFF_K] = 0),
            Box::new(|e| matches!(e, StoreError::ZeroChainLength)),
        ),
        (
            "domain too small for its tuples",
            resealed(&delta, |b| {
                b[OFF_DOMAIN..OFF_DOMAIN + 4].copy_from_slice(&0u32.to_le_bytes())
            }),
            Box::new(|e| matches!(e, StoreError::BadTuple(_))),
        ),
        (
            // An absurd count makes the reader consume the op and
            // checksum bytes as tuples: it fails on whichever typed
            // check a misread tuple trips first, or runs out of bytes.
            "tuple count beyond the bytes",
            resealed(&delta, |b| {
                b[OFF_COUNT..OFF_COUNT + 4].copy_from_slice(&1000u32.to_le_bytes())
            }),
            Box::new(|e| {
                matches!(
                    e,
                    StoreError::Truncated | StoreError::BadTuple(_) | StoreError::BadTupleTag(_)
                )
            }),
        ),
        (
            "tuple tag 7",
            resealed(&delta, |b| b[OFF_TUPLE_0] = 7),
            Box::new(|e| matches!(e, StoreError::BadTupleTag(7))),
        ),
        (
            "out-of-domain constant",
            resealed(&delta, |b| {
                b[OFF_TUPLE_0 + 1..OFF_TUPLE_0 + 5].copy_from_slice(&9u32.to_le_bytes())
            }),
            Box::new(|e| matches!(e, StoreError::BadTuple(_))),
        ),
        (
            "duplicate tuple",
            resealed(&delta, |b| {
                b[OFF_TUPLE_1] = 0;
                b[OFF_TUPLE_1 + 1..OFF_TUPLE_1 + 5].copy_from_slice(&0u32.to_le_bytes());
            }),
            Box::new(|e| matches!(e, StoreError::BadTuple(_))),
        ),
        (
            "delta op 9",
            resealed(&delta, |b| b[OFF_OP] = 9),
            Box::new(|e| matches!(e, StoreError::BadDeltaOp(9))),
        ),
        (
            "truncated before the op body",
            resealed(&delta, |b| b.truncate(OFF_OP + 1 + 8)),
            Box::new(|e| matches!(e, StoreError::Truncated)),
        ),
        (
            "trailing byte after the op",
            resealed(&delta, |b| {
                let at = b.len() - 8;
                b.insert(at, 0xEE);
            }),
            Box::new(|e| matches!(e, StoreError::TrailingBytes { extra: 1 })),
        ),
        (
            "checksum flipped",
            {
                let mut b = delta.clone();
                let last = b.len() - 1;
                b[last] ^= 1;
                b
            },
            Box::new(|e| matches!(e, StoreError::ChecksumMismatch { .. })),
        ),
    ];
    for (name, bytes, expect) in &cases {
        let err = engine
            .apply_delta(bytes)
            .expect_err(&format!("mutation '{name}' must be rejected"));
        assert!(expect(&err), "mutation '{name}': got {err:?}");
    }

    // Exhaustive single-bit sweep: a flip anywhere in the blob is caught
    // by the layer that owns those bytes, never by a panic.
    for i in 0..delta.len() {
        let mut flipped = delta.clone();
        flipped[i] ^= 1;
        let err = engine
            .apply_delta(&flipped)
            .expect_err("a single-bit flip never decodes");
        let ok = match i {
            0..8 => matches!(err, StoreError::BadMagic),
            8..10 => matches!(err, StoreError::UnsupportedVersion(_)),
            _ => matches!(err, StoreError::ChecksumMismatch { .. }),
        };
        assert!(ok, "flip at byte {i}: got {err:?}");
    }

    // Well-formed bytes whose *operation* is illegal on their own shape
    // fail at apply time with the same totality.
    let dup = engine
        .export_delta(
            &HQuery::new(phi.clone()),
            tid.database(),
            &TupleUpdate::Insert {
                desc: TupleDesc::R(0),
            },
        )
        .unwrap();
    assert!(matches!(
        engine.apply_delta(&dup),
        Err(StoreError::BadTuple(_))
    ));
    let gone = engine
        .export_delta(
            &HQuery::new(phi.clone()),
            tid.database(),
            &TupleUpdate::Remove { id: 99 },
        )
        .unwrap();
    assert!(matches!(
        engine.apply_delta(&gone),
        Err(StoreError::BadTuple(_))
    ));

    // Every rejection above changed nothing: same cache, same load
    // count, same answers.
    assert_eq!(engine.cache_len(), cache_before);
    assert_eq!(engine.stats().artifact_loads, loads_before);
    let q = HQuery::new(phi.clone());
    let mut check = PqeEngine::new();
    assert_eq!(
        engine.evaluate(&q, &tid).unwrap(),
        check.evaluate(&q, &tid).unwrap(),
        "the engine must be untouched by rejected deltas"
    );
}

/// Swapping the fixture's φ for each of the 16 two-variable functions
/// (re-sealed): `apply_delta` accepts exactly the cacheable regions and
/// rejects the rest with [`StoreError::PlanMismatch`] — a delta no
/// engine could have exported — without ever panicking.
#[test]
fn delta_region_sweep_accepts_exactly_the_cacheable_functions() {
    let (_, tid, _, delta) = delta_fixture();
    for phi in all_functions(1) {
        let blob = resealed(&delta, |b| {
            b[OFF_WORD..OFF_WORD + 8].copy_from_slice(&phi.table_u64().to_le_bytes())
        });
        let mut probe = PqeEngine::new();
        probe.evaluate(HQuery::new(phi.clone()), &tid).unwrap();
        let cacheable = probe
            .export_artifact(&HQuery::new(phi.clone()), tid.database())
            .is_ok();
        let mut cold = PqeEngine::new();
        let applied = cold.apply_delta(&blob);
        if cacheable {
            let report = applied
                .unwrap_or_else(|e| panic!("cacheable φ {:#x} must apply: {e}", phi.table_u64()));
            assert_eq!(report.artifacts, 1);
        } else {
            assert!(
                matches!(applied, Err(StoreError::PlanMismatch { .. })),
                "uncacheable φ {:#x} must be a plan mismatch",
                phi.table_u64()
            );
        }
    }
}

/// A small durable history for the WAL matrix: one checkpoint, then two
/// WAL-logged inserts that were applied in memory but never
/// re-checkpointed. Returns the shared filesystem, the uncrashed
/// engine, the final instance, and the durable φ.
fn wal_fixture() -> (Arc<MemFs>, PqeEngine, Tid, BoolFn) {
    let mem = Arc::new(MemFs::new());
    let dir = reopen(&mem);
    let mut tid = Tid::new(Database::new(1, DOMAIN), Vec::new()).unwrap();
    tid.insert(TupleDesc::R(0), half()).unwrap();
    tid.insert(TupleDesc::T(0), half()).unwrap();
    let phi = durable_fns(1).remove(0);
    let mut engine = PqeEngine::new();
    engine.evaluate(HQuery::new(phi.clone()), &tid).unwrap();
    dir.checkpoint(&engine).unwrap();
    for desc in [TupleDesc::R(1), TupleDesc::T(1)] {
        let delta = engine
            .export_delta(
                &HQuery::new(phi.clone()),
                tid.database(),
                &TupleUpdate::Insert { desc },
            )
            .unwrap();
        dir.log_delta(&delta).unwrap();
        engine.insert_tuple(&mut tid, desc, half()).unwrap();
    }
    (mem, engine, tid, phi)
}

/// A fork of `base`'s file map on a fresh in-memory filesystem: each
/// matrix case corrupts its own copy of the same durable history.
fn fork(base: &MemFs) -> Arc<MemFs> {
    let copy = MemFs::new();
    for (path, bytes) in base.files() {
        copy.install(path, bytes);
    }
    Arc::new(copy)
}

/// One WAL-matrix recovery: corrupt the log with `mutate`, recover, and
/// check the typed outcome. Always asserts totality (no panic, no
/// `Err`), quarantine accounting, that the recovered engine answers the
/// durable φ on the final instance exactly like the uncrashed one, and
/// that a **second** recovery finds a fully repaired directory.
#[allow(clippy::too_many_arguments)]
fn wal_case(
    name: &str,
    base: &MemFs,
    reference: &mut PqeEngine,
    tid: &Tid,
    phi: &BoolFn,
    mutate: impl FnOnce(&mut Vec<u8>),
    expect_applied: u64,
    expect_dropped: u64,
    expect_cut: &str,
) {
    let mem = fork(base);
    let wal_path = PathBuf::from("engine").join(WAL_FILE);
    let mut bytes = mem.read(&wal_path).unwrap();
    mutate(&mut bytes);
    mem.install(wal_path.clone(), bytes);

    let dir = reopen(&mem);
    let before = mem.files();
    let (mut recovered, report) = PqeEngine::recover_with(EngineConfig::default(), &dir).unwrap();
    assert_eq!(
        report.wal_records_applied, expect_applied,
        "{name}: applied"
    );
    assert_eq!(
        report.wal_records_dropped, expect_dropped,
        "{name}: dropped"
    );
    let cut = report
        .wal_cut
        .as_deref()
        .unwrap_or_else(|| panic!("{name}: must cut"));
    assert!(
        cut.contains(expect_cut),
        "{name}: cut reason {cut:?} must mention {expect_cut:?}"
    );
    assert_eq!(
        report.quarantined.len(),
        1,
        "{name}: the log is quarantined"
    );
    assert!(
        report.quarantined[0].original.ends_with(WAL_FILE),
        "{name}: quarantine names the log"
    );
    assert_report_consistent(&recovered, &report, &before, &mem, name);

    let q = HQuery::new(phi.clone());
    assert_eq!(
        recovered.evaluate(&q, tid).unwrap(),
        reference.evaluate(&q, tid).unwrap(),
        "{name}: recovered answers must match the uncrashed engine"
    );

    // The cut log was rewritten to its applied prefix: recovering again
    // finds nothing wrong and replays exactly that prefix.
    let dir2 = reopen(&mem);
    let (_, report2) = PqeEngine::recover_with(EngineConfig::default(), &dir2).unwrap();
    assert!(
        report2.quarantined.is_empty() && report2.wal_cut.is_none(),
        "{name}: the first recovery must leave a trustworthy log"
    );
    assert_eq!(
        report2.wal_records_applied, expect_applied,
        "{name}: stable prefix"
    );
}

/// Every way a WAL record frame can be damaged — torn header, torn
/// payload, checksum rot, absurd length, a frame-valid record whose
/// payload is poison, and one whose operation is illegal — each mapped
/// to its typed cut reason, a quarantined log, and an exact recovery.
#[test]
fn wal_corruption_matrix_quarantines_and_recovers() {
    let (mem, mut reference, tid, phi) = wal_fixture();
    let wal_path = PathBuf::from("engine").join(WAL_FILE);
    let full = mem.read(&wal_path).unwrap();
    let replay = Wal::scan(&full);
    assert_eq!(replay.records.len(), 2, "fixture: two logged deltas");
    let second_off = replay.records[1].offset;

    // Frame-layer variants, pinned on the scanner first.
    let mut torn_header = full.clone();
    torn_header.extend_from_slice(&[0xAB; 4]);
    assert!(matches!(
        Wal::scan(&torn_header).corruption,
        Some(WalCorruption::TornHeader { bytes: 4, .. })
    ));
    wal_case(
        "torn header",
        &mem,
        &mut reference,
        &tid,
        &phi,
        |b| b.extend_from_slice(&[0xAB; 4]),
        2,
        0,
        "torn record header",
    );

    let cut_len = full.len() - 3;
    assert!(matches!(
        Wal::scan(&full[..cut_len]).corruption,
        Some(WalCorruption::TornRecord { .. })
    ));
    wal_case(
        "torn payload",
        &mem,
        &mut reference,
        &tid,
        &phi,
        |b| b.truncate(cut_len),
        1,
        0,
        "torn record payload",
    );

    let mut rotted = full.clone();
    rotted[RECORD_HEADER_LEN] ^= 0x40;
    assert!(matches!(
        Wal::scan(&rotted).corruption,
        Some(WalCorruption::ChecksumMismatch { valid_len: 0, .. })
    ));
    wal_case(
        "payload bit rot in the first record",
        &mem,
        &mut reference,
        &tid,
        &phi,
        |b| b[RECORD_HEADER_LEN] ^= 0x40,
        0,
        0,
        "checksum mismatch",
    );

    wal_case(
        "frame checksum flipped",
        &mem,
        &mut reference,
        &tid,
        &phi,
        |b| b[second_off + 4] ^= 1,
        1,
        0,
        "checksum mismatch",
    );

    let mut huge = full.clone();
    huge[second_off..second_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Wal::scan(&huge).corruption,
        Some(WalCorruption::RecordTooLarge { len: u32::MAX, .. })
    ));
    wal_case(
        "absurd length prefix",
        &mem,
        &mut reference,
        &tid,
        &phi,
        |b| b[second_off..second_off + 4].copy_from_slice(&u32::MAX.to_le_bytes()),
        1,
        0,
        "exceeds",
    );

    // Frame-valid records whose payloads are poison: the frame replays,
    // the apply fails, and the log is cut at that record — records
    // behind it (intact or not) are dropped to preserve order.
    let decode_poison = fork(&mem);
    Wal::with_io(
        wal_path.clone(),
        Arc::clone(&decode_poison) as Arc<dyn StorageIo>,
    )
    .append(b"not a delta blob")
    .unwrap();
    Wal::with_io(
        wal_path.clone(),
        Arc::clone(&decode_poison) as Arc<dyn StorageIo>,
    )
    .append(b"dropped with it")
    .unwrap();
    wal_case(
        "frame-valid payload that fails to decode",
        &decode_poison,
        &mut reference,
        &tid,
        &phi,
        |_| {},
        2,
        2,
        "failed to apply",
    );

    // An operation illegal on its own shape: a well-formed delta
    // inserting a tuple its shape already holds.
    let (donor, donor_tid, donor_phi, _) = delta_fixture();
    let illegal = donor
        .export_delta(
            &HQuery::new(donor_phi),
            donor_tid.database(),
            &TupleUpdate::Insert {
                desc: TupleDesc::R(0),
            },
        )
        .unwrap();
    let apply_poison = fork(&mem);
    Wal::with_io(wal_path, Arc::clone(&apply_poison) as Arc<dyn StorageIo>)
        .append(&illegal)
        .unwrap();
    wal_case(
        "frame-valid operation illegal on its shape",
        &apply_poison,
        &mut reference,
        &tid,
        &phi,
        |_| {},
        2,
        1,
        "failed to apply",
    );
}

/// A directory of pure garbage — every durable file replaced by junk,
/// plus an orphaned temp snapshot — degrades to a documented cold
/// start: three quarantines, the temp deleted, a working engine, and a
/// next checkpoint that restores full health.
#[test]
fn pure_garbage_directory_cold_starts_with_everything_quarantined() {
    let mem = Arc::new(MemFs::new());
    let dir_path = PathBuf::from("engine");
    mem.install(dir_path.join(SNAPSHOT_FILE), b"junk snapshot".to_vec());
    mem.install(dir_path.join(SNAPSHOT_PREV_FILE), vec![0xFF; 64]);
    mem.install(dir_path.join(SNAPSHOT_TMP_FILE), b"orphan".to_vec());
    mem.install(dir_path.join(WAL_FILE), vec![0x13; 9]);

    let dir = reopen(&mem);
    let before = mem.files();
    let (mut engine, report) = PqeEngine::recover_with(EngineConfig::default(), &dir).unwrap();
    assert_eq!(report.snapshot, SnapshotSource::Cold);
    assert!(!report.clean());
    assert_eq!(report.quarantined.len(), 3, "snapshot, previous, and log");
    assert_eq!(report.wal_records_applied, 0);
    assert!(
        mem.read(&dir_path.join(SNAPSHOT_TMP_FILE)).is_err(),
        "an orphaned temp is deleted, not quarantined: it was never the truth"
    );
    assert_report_consistent(&engine, &report, &before, &mem, "garbage dir");
    let rendered = report.to_string();
    assert!(rendered.contains("cold start") && rendered.contains("quarantined"));

    // The survivor works, and its next checkpoint re-establishes a
    // clean directory.
    let mut tid = Tid::new(Database::new(1, DOMAIN), Vec::new()).unwrap();
    tid.insert(TupleDesc::R(0), half()).unwrap();
    tid.insert(TupleDesc::T(0), half()).unwrap();
    let phi = durable_fns(1).remove(0);
    let q = HQuery::new(phi);
    let answer = engine.evaluate(&q, &tid).unwrap();
    assert_eq!(answer, PqeEngine::new().evaluate(&q, &tid).unwrap());
    dir.checkpoint(&engine).unwrap();
    let (_, healed) = PqeEngine::recover_with(EngineConfig::default(), &reopen(&mem)).unwrap();
    assert!(
        healed.clean(),
        "a checkpoint after cold start heals the directory"
    );
    assert!(matches!(healed.snapshot, SnapshotSource::Current { artifacts } if artifacts >= 1));
}

/// A short read of the current snapshot during recovery itself (a
/// concurrently-truncated file, a bad sector): the generation is
/// quarantined and recovery falls back to the retained previous
/// generation — graceful degradation inside the recovery path, not just
/// before it.
#[test]
fn short_snapshot_read_falls_back_to_the_previous_generation() {
    let seed = common::BASE_SEED ^ 0x5B;
    let durable = durable_fns(1);
    let mem = Arc::new(MemFs::new());
    let (mut reference, tid, _) =
        drive(Arc::clone(&mem) as Arc<dyn StorageIo>, seed, 1, &durable).expect("fault-free");
    assert!(
        mem.read(&PathBuf::from("engine").join(SNAPSHOT_PREV_FILE))
            .is_ok(),
        "the workload's second checkpoint retains a previous generation"
    );

    // Operation numbering on the recovery side: 0 = create_dir_all,
    // 1 = the read of snapshot.bin — truncate that one to 10 bytes.
    let faulted = Arc::new(FaultIo::new(
        Arc::clone(&mem) as Arc<dyn StorageIo>,
        FaultPlan {
            short_read: Some((1, 10)),
            ..FaultPlan::default()
        },
    ));
    let dir = DurableDir::open_with("engine", faulted as Arc<dyn StorageIo>).unwrap();
    let (mut recovered, report) = PqeEngine::recover_with(EngineConfig::default(), &dir).unwrap();
    assert!(
        matches!(report.snapshot, SnapshotSource::Previous { .. }),
        "got {:?}",
        report.snapshot
    );
    assert_eq!(report.quarantined.len(), 1);
    assert!(report.quarantined[0].original.ends_with(SNAPSHOT_FILE));
    assert!(!report.clean());
    for phi in &durable {
        let q = HQuery::new(phi.clone());
        assert_eq!(
            recovered.evaluate(&q, &tid).unwrap(),
            reference.evaluate(&q, &tid).unwrap(),
            "previous-generation start must still answer exactly"
        );
    }
}

/// Cases per property for the byte-flip fuzz below.
fn flip_cases() -> u32 {
    if common::seed_count() > common::DEFAULT_SEEDS {
        48
    } else {
        12
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(flip_cases()))]

    /// Random byte flips anywhere in the durable directory always end in
    /// full recovery or clean quarantine: recovery returns `Ok`, the
    /// engine answers every probe exactly like the uncrashed reference,
    /// corrupt originals are preserved at their quarantine names, and a
    /// second recovery finds nothing left to repair.
    #[test]
    fn random_byte_flips_recover_or_quarantine_cleanly(seed in any::<u64>()) {
        let k = 1 + (seed % 2) as u8;
        let durable = durable_fns(k);
        let mem = Arc::new(MemFs::new());
        let (mut reference, tid, _) =
            drive(Arc::clone(&mem) as Arc<dyn StorageIo>, seed, k, &durable)
                .expect("fault-free");

        // Probe set: the durable φs plus four rotating functions.
        let fns = all_functions(k);
        let mut state = seed ^ 0xF11B;
        let mut probes = durable.clone();
        for _ in 0..4 {
            probes.push(fns[(mix(&mut state) as usize) % fns.len()].clone());
        }
        let expected: Vec<BigRational> = probes
            .iter()
            .map(|phi| reference.evaluate(HQuery::new(phi.clone()), &tid).unwrap())
            .collect();

        // Flip one to four random bits across the surviving files.
        let mut files: Vec<(PathBuf, Vec<u8>)> = mem.files().into_iter().collect();
        files.sort();
        for _ in 0..=(mix(&mut state) % 4) {
            let fi = (mix(&mut state) as usize) % files.len();
            let (path, bytes) = &mut files[fi];
            if bytes.is_empty() {
                continue;
            }
            let bi = (mix(&mut state) as usize) % bytes.len();
            bytes[bi] ^= 1 << (mix(&mut state) % 8);
            mem.install(path.clone(), bytes.clone());
        }

        let dir = reopen(&mem);
        let before = mem.files();
        let (mut recovered, report) =
            PqeEngine::recover_with(EngineConfig::default(), &dir)
                .expect("recovery is total under corruption");
        assert_report_consistent(&recovered, &report, &before, &mem, "byte flips");
        for (phi, want) in probes.iter().zip(&expected) {
            prop_assert_eq!(
                &recovered.evaluate(HQuery::new(phi.clone()), &tid).unwrap(),
                want,
                "recovered answers must match the uncrashed reference"
            );
        }

        // Whatever the first recovery quarantined or truncated, the
        // second finds a directory with nothing left to repair.
        let (mut again, report2) =
            PqeEngine::recover_with(EngineConfig::default(), &reopen(&mem)).unwrap();
        prop_assert!(
            report2.quarantined.is_empty() && report2.wal_cut.is_none(),
            "one recovery repairs the directory: second report was {}", report2
        );
        for (phi, want) in probes.iter().zip(&expected) {
            prop_assert_eq!(
                &again.evaluate(HQuery::new(phi.clone()), &tid).unwrap(),
                want
            );
        }
    }
}
